open Nectar_core
open Nectar_sim
module Costs = Nectar_cab.Costs
module Seq = Tcp_seq

let header_bytes = 20

let fl_fin = 0x01
let fl_syn = 0x02
let fl_rst = 0x04
let fl_ack = 0x10

exception Connection_refused
exception Connection_timed_out
exception Connection_reset

type state =
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

let state_to_string = function
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"
  | Closed -> "CLOSED"

type conn = {
  tcp : t;
  id : int;
  lport : int;
  raddr : Ipv4.addr;
  rport : int;
  lock : Lock.Mutex.t;
  changed : Lock.Condvar.t; (* connect/close progress *)
  space : Lock.Condvar.t; (* send-buffer space *)
  mutable st : state;
  (* send sequence space *)
  iss : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;
  (* send buffer: a ring holding [snd_una, snd_una + sb_len) *)
  sndbuf : Bytes.t;
  mutable sb_start : int;
  mutable sb_len : int;
  mutable fin_pending : bool;
  mutable fin_sent : bool;
  (* receive sequence space *)
  mutable rcv_nxt : int;
  recv_mb : Mailbox.t;
  (* retransmission *)
  mutable rto : int;
  mutable srtt : float; (* ns; 0 = no sample yet *)
  mutable rttvar : float;
  mutable rtx_deadline : Sim_time.t option;
  mutable syn_tries : int;
  mutable data_tries : int; (* consecutive rtx timeouts with no progress *)
  mutable timed_out : bool; (* closed by our own retry budget, not a peer *)
  mutable rtt_sample : (int * Sim_time.t) option; (* (seq to ack, sent at) *)
  mutable on_establish : (conn -> unit) option;
  mutable was_reset : bool;
  mutable adv_wnd : int; (* window last advertised to the peer *)
  mutable wnd_update_pending : bool;
}

and t = {
  ip : Ipv4.t;
  rt : Runtime.t;
  owner : string;  (* CAB name, labels this node's copy-meter records *)
  input : Mailbox.t;
  send_req : Mailbox.t;
  sw_checksum : bool;
  mss : int;
  window_limit : int;
  conns : (int, conn) Hashtbl.t; (* Int_key.tcp_conn (lport, raddr, rport) *)
  by_id : (int, conn) Hashtbl.t;
  listeners : (int, conn -> unit) Hashtbl.t;
  timer_lock : Lock.Mutex.t;
  timer_cv : Lock.Condvar.t;
  mutable timer_gen : int; (* bumped by arm_rtx; guards lost wakeups *)
  mutable next_conn_id : int;
  mutable next_port : int;
  mutable iss_counter : int;
  mutable seg_in : int;
  mutable seg_out : int;
  mutable retx : int;
  mutable bad_cksum : int;
}

let sndbuf_cap = 64 * 1024
let min_rto = Sim_time.ms 2
let max_rto = Sim_time.s 2
let initial_rto = Sim_time.ms 10
let syn_retry_limit = 6

(* Retransmission budget for established connections: after this many
   consecutive timer firings with no ACK progress (backoff capped at
   [max_rto]) the connection is aborted locally and the user sees
   [Connection_timed_out] instead of an infinite retry loop. *)
let data_retry_limit = 10
let time_wait_span = Sim_time.ms 40

(* With [`Interrupt] input mode, exclusion comes from running at interrupt
   level (masked), not from the mutex — see the .mli. *)
let with_conn (ctx : Ctx.t) c f =
  if ctx.may_block then Lock.Mutex.with_lock ctx c.lock f else f ()

(* ---------- segment output ---------- *)

let rcv_window c =
  max 0 (min c.tcp.window_limit 0xffff - Mailbox.bytes_in_use c.recv_mb)

(* Copy [n] bytes of the ring starting at send-sequence [seq] into [dst]. *)
let sndbuf_read c ~seq ~dst ~dst_pos ~n =
  let cap = Bytes.length c.sndbuf in
  let first = (c.sb_start + Seq.mask (seq - c.snd_una)) mod cap in
  let run = min n (cap - first) in
  Bytes.blit c.sndbuf first dst dst_pos run;
  if run < n then Bytes.blit c.sndbuf 0 dst (dst_pos + run) (n - run)

let emit (ctx : Ctx.t) c ~flags ~seq ~payload_n =
  let t = c.tcp in
  ctx.work Costs.tcp_output_ns;
  let seg_len = header_bytes + payload_n in
  match Ipv4.alloc ctx t.ip seg_len with
  | exception Datalink.No_buffer ->
      (* transmit pool momentarily full at interrupt level: drop the
         segment; the retransmission machinery recovers *)
      ()
  | msg ->
  if payload_n > 0 then begin
    Message.adjust_head msg header_bytes;
    let dst = msg.Message.mem in
    (* the segment cannot alias the ring: retransmission needs the ring
       contents stable while the segment's frame is in flight *)
    Nectar_util.Copy_meter.record ~owner:t.owner Nectar_util.Copy_meter.Frag
      payload_n;
    sndbuf_read c ~seq ~dst ~dst_pos:msg.Message.off ~n:payload_n;
    Message.push_head msg header_bytes
  end;
  Message.set_u16 msg 0 c.lport;
  Message.set_u16 msg 2 c.rport;
  Message.set_u32 msg 4 seq;
  Message.set_u32 msg 8 c.rcv_nxt;
  Message.set_u8 msg 12 0x50;
  Message.set_u8 msg 13 flags;
  let advertised = rcv_window c in
  c.adv_wnd <- advertised;
  Message.set_u16 msg 14 advertised;
  Message.set_u16 msg 16 0;
  Message.set_u16 msg 18 0;
  if t.sw_checksum then begin
    ctx.work (seg_len * Costs.tcp_cksum_ns_per_byte);
    let ck =
      Ipv4.pseudo_checksum msg.Message.mem ~pos:msg.Message.off ~len:seg_len
        ~src:(Ipv4.local_addr t.ip) ~dst:c.raddr ~proto:Ipv4.proto_tcp
    in
    Message.set_u16 msg 16 (if ck = 0 then 0xffff else ck)
  end;
  t.seg_out <- t.seg_out + 1;
  Nectar_sim.Trace.instant ~track:t.owner "tcp.seg-out";
  Ipv4.output ctx t.ip ~dst:c.raddr ~proto:Ipv4.proto_tcp msg

let now c = Engine.now (Runtime.engine c.tcp.rt)

let arm_rtx c =
  let deadline = now c + c.rto in
  (match c.rtx_deadline with
  | Some d when d <= deadline -> ()
  | _ ->
      c.rtx_deadline <- Some deadline;
      (* the generation counter catches a signal sent before the timer
         thread has reached its wait (a condition-variable signal is not
         sticky) *)
      c.tcp.timer_gen <- c.tcp.timer_gen + 1;
      Lock.Condvar.signal c.tcp.timer_cv);
  ()

let disarm_rtx c = c.rtx_deadline <- None

let outstanding c =
  Seq.gt c.snd_nxt c.snd_una
  || (match c.st with Syn_sent | Syn_rcvd -> true | _ -> false)

let debug = Tcp_debug.enabled

(* Push out as much as the peer's window and our buffer allow. *)
let rec tcp_output ctx c =
  if !debug then
    Tcp_debug.printf "[%d] out c%d st=%s una=%d nxt=%d wnd=%d sb=%d\n"
      (Engine.now (Runtime.engine c.tcp.rt)) c.id (state_to_string c.st)
      (Seq.mask (c.snd_una - c.iss)) (Seq.mask (c.snd_nxt - c.iss)) c.snd_wnd
      c.sb_len;
  let in_flight = Seq.mask (c.snd_nxt - c.snd_una) in
  let fin_adj = if c.fin_sent then 1 else 0 in
  let unsent = c.sb_len - (in_flight - fin_adj) in
  let window_room = c.snd_wnd - in_flight in
  (* Sender-side silly-window avoidance: emit only full-MSS segments or the
     final remainder — a window fractionally short of a segment otherwise
     splinters the stream into mss-1/1-byte pairs, each costing a wire
     round trip. *)
  if unsent > 0 && window_room >= min unsent c.tcp.mss && not c.fin_sent
  then begin
    let n = min (min unsent window_room) c.tcp.mss in
    let seq = c.snd_nxt in
    c.snd_nxt <- Seq.add c.snd_nxt n;
    if c.rtt_sample = None then c.rtt_sample <- Some (c.snd_nxt, now c);
    arm_rtx c;
    emit ctx c ~flags:fl_ack ~seq ~payload_n:n;
    tcp_output ctx c
  end
  else if
    c.fin_pending && (not c.fin_sent) && unsent = 0
    && (c.st = Established || c.st = Close_wait)
  then begin
    c.fin_sent <- true;
    let seq = c.snd_nxt in
    c.snd_nxt <- Seq.add c.snd_nxt 1;
    c.st <- (if c.st = Established then Fin_wait_1 else Last_ack);
    arm_rtx c;
    emit ctx c ~flags:(fl_fin lor fl_ack) ~seq ~payload_n:0
  end
  else if unsent > 0 && in_flight = 0 && window_room < min unsent c.tcp.mss
  then
    (* window too small to send, nothing in flight: arm the probe timer so
       the transfer cannot stall forever *)
    arm_rtx c

(* ---------- connection setup helpers ---------- *)

let fresh_iss t =
  t.iss_counter <- Seq.add t.iss_counter 64000;
  t.iss_counter

let make_conn t ~lport ~raddr ~rport ~st ~iss ~rcv_nxt =
  let eng = Runtime.engine t.rt in
  let id = t.next_conn_id in
  t.next_conn_id <- id + 1;
  let name = Printf.sprintf "tcp-conn-%d" id in
  let c =
    {
      tcp = t;
      id;
      lport;
      raddr;
      rport;
      lock = Lock.Mutex.create eng ~name:(name ^ ".lock");
      changed = Lock.Condvar.create eng ~name:(name ^ ".changed");
      space = Lock.Condvar.create eng ~name:(name ^ ".space");
      st;
      iss;
      snd_una = iss;
      snd_nxt = Seq.add iss 1; (* SYN occupies one sequence number *)
      snd_wnd = t.mss;
      sndbuf = Bytes.create sndbuf_cap;
      sb_start = 0;
      sb_len = 0;
      fin_pending = false;
      fin_sent = false;
      rcv_nxt;
      recv_mb =
        Runtime.create_mailbox t.rt ~name:(name ^ ".recv")
          ~byte_limit:(128 * 1024) ~cached_buffer_bytes:0 ();
      rto = initial_rto;
      srtt = 0.;
      rttvar = 0.;
      rtx_deadline = None;
      syn_tries = 0;
      data_tries = 0;
      timed_out = false;
      rtt_sample = None;
      on_establish = None;
      was_reset = false;
      adv_wnd = 0;
      wnd_update_pending = false;
    }
  in
  (* Receiver-side window updates: when the application drains the receive
     mailbox and the window has reopened by at least half an MSS beyond
     what the peer last heard, send a pure ACK.  Without this a fast sender
     parks on a closed window until its probe timer fires. *)
  Mailbox.set_on_space_freed c.recv_mb
    (Some
       (fun () ->
         let live =
           match c.st with
           | Established | Fin_wait_1 | Fin_wait_2 -> true
           | _ -> false
         in
         if
           live && (not c.wnd_update_pending)
           && rcv_window c - c.adv_wnd >= t.mss / 2
         then begin
           c.wnd_update_pending <- true;
           Nectar_cab.Interrupts.post
             (Nectar_cab.Cab.irq (Runtime.cab t.rt))
             ~name:"tcp-wnd-update"
             (fun ictx ->
               c.wnd_update_pending <- false;
               let ctx = Ctx.of_interrupt ictx in
               match c.st with
               | Established | Fin_wait_1 | Fin_wait_2 ->
                   emit ctx c ~flags:fl_ack ~seq:c.snd_nxt ~payload_n:0
               | _ -> ())
         end));
  Hashtbl.replace t.conns (Nectar_util.Int_key.tcp_conn ~lport ~raddr ~rport) c;
  Hashtbl.replace t.by_id id c;
  c

let remove_conn c =
  let t = c.tcp in
  Hashtbl.remove t.conns
    (Nectar_util.Int_key.tcp_conn ~lport:c.lport ~raddr:c.raddr ~rport:c.rport);
  Hashtbl.remove t.by_id c.id;
  disarm_rtx c

let enter_time_wait c =
  c.st <- Time_wait;
  disarm_rtx c;
  Lock.Condvar.broadcast c.changed;
  ignore
    (Engine.after (Runtime.engine c.tcp.rt) time_wait_span (fun () ->
         c.st <- Closed;
         remove_conn c))

let deliver_eof ctx c =
  match Mailbox.try_begin_put ctx c.recv_mb 0 with
  | Some eof -> Mailbox.end_put ctx c.recv_mb eof
  | None -> ()

let reset_conn ?(by_peer = true) ctx c =
  if by_peer then c.was_reset <- true;
  c.st <- Closed;
  disarm_rtx c;
  remove_conn c;
  deliver_eof ctx c;
  Lock.Condvar.broadcast c.changed;
  Lock.Condvar.broadcast c.space

(* ---------- RTT estimation (Jacobson/Karn) ---------- *)

let rtt_update c sample_ns =
  let s = float_of_int sample_ns in
  if c.srtt = 0. then begin
    c.srtt <- s;
    c.rttvar <- s /. 2.
  end
  else begin
    c.rttvar <- (0.75 *. c.rttvar) +. (0.25 *. Float.abs (c.srtt -. s));
    c.srtt <- (0.875 *. c.srtt) +. (0.125 *. s)
  end;
  c.rto <-
    Int.max min_rto
      (Int.min max_rto (int_of_float (c.srtt +. (4. *. c.rttvar))))

(* ---------- input processing ---------- *)

let parse_segment msg =
  match Ipv4.read_header msg with
  | None -> None
  | Some h ->
      let ip_hdr = Ipv4.header_bytes in
      let seg_len = Message.length msg - ip_hdr in
      if seg_len < header_bytes then None
      else
        let sport = Message.get_u16 msg ip_hdr in
        let dport = Message.get_u16 msg (ip_hdr + 2) in
        let seq = Message.get_u32 msg (ip_hdr + 4) in
        let ack = Message.get_u32 msg (ip_hdr + 8) in
        let data_off = Message.get_u8 msg (ip_hdr + 12) lsr 4 * 4 in
        let flags = Message.get_u8 msg (ip_hdr + 13) in
        let wnd = Message.get_u16 msg (ip_hdr + 14) in
        if data_off < header_bytes || data_off > seg_len then None
        else
          Some (h, seg_len, sport, dport, seq, ack, data_off, flags, wnd)

let send_rst ctx t ~dst ~sport ~dport ~seq ~ack_theirs =
  ctx.Ctx.work Costs.tcp_output_ns;
  match Ipv4.alloc ctx t.ip header_bytes with
  | exception Datalink.No_buffer -> ()
  | msg ->
  Message.set_u16 msg 0 sport;
  Message.set_u16 msg 2 dport;
  Message.set_u32 msg 4 seq;
  Message.set_u32 msg 8 ack_theirs;
  Message.set_u8 msg 12 0x50;
  Message.set_u8 msg 13 (fl_rst lor fl_ack);
  Message.set_u16 msg 14 0;
  Message.set_u16 msg 16 0;
  Message.set_u16 msg 18 0;
  if t.sw_checksum then begin
    let ck =
      Ipv4.pseudo_checksum msg.Message.mem ~pos:msg.Message.off
        ~len:header_bytes ~src:(Ipv4.local_addr t.ip) ~dst
        ~proto:Ipv4.proto_tcp
    in
    Message.set_u16 msg 16 (if ck = 0 then 0xffff else ck)
  end;
  t.seg_out <- t.seg_out + 1;
  Nectar_sim.Trace.instant ~track:t.owner "tcp.seg-out";
  Ipv4.output ctx t.ip ~dst ~proto:Ipv4.proto_tcp msg

let process_ack c ~ack ~wnd =
  if Seq.ge ack c.snd_una then c.snd_wnd <- wnd;
  if Seq.gt ack c.snd_una && Seq.le ack c.snd_nxt then begin
    c.data_tries <- 0;
    (* RTT sample (Karn: the sample is cleared on retransmission) *)
    (match c.rtt_sample with
    | Some (sample_seq, t0) when Seq.ge ack sample_seq ->
        c.rtt_sample <- None;
        rtt_update c (now c - t0)
    | _ -> ());
    let was_syn = Seq.mask (c.snd_una - c.iss) = 0 in
    let acked = Seq.mask (ack - c.snd_una) in
    (* sequence-space units that are not buffer bytes: SYN, FIN *)
    let ctl = (if was_syn then 1 else 0) in
    let fin_acked = c.fin_sent && Seq.ge ack c.snd_nxt in
    let ctl = ctl + if fin_acked then 1 else 0 in
    let data_acked = min c.sb_len (acked - ctl) in
    if data_acked > 0 then begin
      c.sb_start <- (c.sb_start + data_acked) mod Bytes.length c.sndbuf;
      c.sb_len <- c.sb_len - data_acked;
      Lock.Condvar.broadcast c.space
    end;
    c.snd_una <- ack;
    if Seq.ge c.snd_una c.snd_nxt then disarm_rtx c
    else begin
      c.rtx_deadline <- None;
      arm_rtx c
    end;
    (* state transitions driven by our FIN being acknowledged *)
    if fin_acked then begin
      match c.st with
      | Fin_wait_1 -> c.st <- Fin_wait_2
      | Closing -> enter_time_wait c
      | Last_ack ->
          c.st <- Closed;
          remove_conn c;
          Lock.Condvar.broadcast c.changed
      | _ -> ()
    end
  end

let process_segment_locked ctx c ~msg ~seg_len ~seq ~ack ~data_off ~flags
    ~wnd =
  let t = c.tcp in
  let payload_n = seg_len - data_off in
  let consumed = ref false in
  let ack_needed = ref false in
  if flags land fl_rst <> 0 then begin
    reset_conn ctx c
  end
  else begin
    (match c.st with
    | Syn_sent ->
        if flags land fl_syn <> 0 && flags land fl_ack <> 0
           && ack = Seq.add c.iss 1 then begin
          c.rcv_nxt <- Seq.add seq 1;
          c.snd_una <- ack;
          c.snd_wnd <- wnd;
          c.st <- Established;
          disarm_rtx c;
          ack_needed := true;
          Lock.Condvar.broadcast c.changed
        end
    | Syn_rcvd ->
        if flags land fl_ack <> 0 && ack = Seq.add c.iss 1 then begin
          c.snd_una <- ack;
          c.snd_wnd <- wnd;
          c.st <- Established;
          disarm_rtx c;
          Lock.Condvar.broadcast c.changed;
          match c.on_establish with
          | Some f ->
              c.on_establish <- None;
              f c
          | None -> ()
        end
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
    | Last_ack | Time_wait ->
        if flags land fl_ack <> 0 then process_ack c ~ack ~wnd
    | Closed -> ());
    (* in-order data *)
    (match c.st with
    | Established | Fin_wait_1 | Fin_wait_2 ->
        if payload_n > 0 then begin
          if seq = c.rcv_nxt then begin
            c.rcv_nxt <- Seq.add c.rcv_nxt payload_n;
            Message.adjust_head msg (Ipv4.header_bytes + data_off);
            Mailbox.enqueue ctx msg c.recv_mb;
            consumed := true
          end;
          (* duplicates and out-of-order segments are dropped but acked *)
          ack_needed := true
        end
    | Syn_sent | Syn_rcvd | Close_wait | Closing | Last_ack | Time_wait
    | Closed ->
        ());
    (* FIN *)
    let fin_seq = Seq.add seq payload_n in
    if flags land fl_fin <> 0 && fin_seq = c.rcv_nxt then begin
      c.rcv_nxt <- Seq.add c.rcv_nxt 1;
      ack_needed := true;
      deliver_eof ctx c;
      match c.st with
      | Established -> c.st <- Close_wait
      | Fin_wait_1 ->
          (* our FIN not yet acked: simultaneous close *)
          c.st <- Closing
      | Fin_wait_2 -> enter_time_wait c
      | Syn_sent | Syn_rcvd | Close_wait | Closing | Last_ack | Time_wait
      | Closed ->
          ()
    end
    else if flags land fl_fin <> 0 then ack_needed := true;
    if !ack_needed then emit ctx c ~flags:fl_ack ~seq:c.snd_nxt ~payload_n:0;
    (* an opened window may unblock queued data *)
    (match c.st with
    | Established | Close_wait | Fin_wait_1 | Fin_wait_2 ->
        tcp_output ctx c
    | _ -> ());
    ignore t
  end;
  !consumed

let process_segment (ctx : Ctx.t) t msg =
  ctx.work Costs.tcp_input_ns;
  t.seg_in <- t.seg_in + 1;
  Nectar_sim.Trace.instant ~track:t.owner "tcp.seg-in";
  match parse_segment msg with
  | None -> Mailbox.dispose ctx msg
  | Some (h, seg_len, sport, dport, seq, ack, data_off, flags, wnd) ->
      let checksum_ok =
        if not t.sw_checksum then true
        else begin
          ctx.work (seg_len * Costs.tcp_cksum_ns_per_byte);
          Ipv4.pseudo_checksum msg.Message.mem
            ~pos:(msg.Message.off + Ipv4.header_bytes) ~len:seg_len
            ~src:h.Ipv4.src ~dst:h.Ipv4.dst ~proto:Ipv4.proto_tcp
          = 0
        end
      in
      if not checksum_ok then begin
        t.bad_cksum <- t.bad_cksum + 1;
        Mailbox.dispose ctx msg
      end
      else begin
        match
          Hashtbl.find_opt t.conns
            (Nectar_util.Int_key.tcp_conn ~lport:dport ~raddr:h.Ipv4.src
               ~rport:sport)
        with
        | Some c ->
            let consumed =
              with_conn ctx c (fun () ->
                  process_segment_locked ctx c ~msg ~seg_len ~seq ~ack
                    ~data_off ~flags ~wnd)
            in
            if not consumed then Mailbox.dispose ctx msg
        | None ->
            (if flags land fl_rst <> 0 then ()
             else if flags land fl_syn <> 0 && Hashtbl.mem t.listeners dport
             then begin
               (* passive open *)
               let on_accept = Hashtbl.find t.listeners dport in
               let c =
                 make_conn t ~lport:dport ~raddr:h.Ipv4.src ~rport:sport
                   ~st:Syn_rcvd ~iss:(fresh_iss t) ~rcv_nxt:(Seq.add seq 1)
               in
               c.snd_wnd <- wnd;
               c.on_establish <- Some on_accept;
               arm_rtx c;
               emit ctx c ~flags:(fl_syn lor fl_ack) ~seq:c.iss ~payload_n:0
             end
             else
               send_rst ctx t ~dst:h.Ipv4.src ~sport:dport ~dport:sport
                 ~seq:(if flags land fl_ack <> 0 then ack else 0)
                 ~ack_theirs:(Seq.add seq (seg_len - data_off)));
            Mailbox.dispose ctx msg
      end

(* ---------- threads ---------- *)

let input_thread t (ctx : Ctx.t) =
  while true do
    let msg = Mailbox.begin_get ctx t.input in
    (* The message stays in Reading state through processing; enqueue to a
       user mailbox or dispose both accept it. *)
    process_segment ctx t msg
  done

(* Retransmission timer thread: wakes at the earliest connection deadline,
   retransmits from snd_una with exponential backoff. *)
let timer_thread t (ctx : Ctx.t) =
  Lock.Mutex.lock ctx t.timer_lock;
  while true do
    let gen = t.timer_gen in
    let now_ns = Engine.now (Runtime.engine t.rt) in
    let next =
      Hashtbl.fold
        (fun _ c acc ->
          match c.rtx_deadline with
          | Some d -> ( match acc with Some a -> Some (min a d) | None -> Some d)
          | None -> acc)
        t.by_id None
    in
    (match next with
    | None ->
        (* no armed deadline: sleep until a connection arms one (this must
           not poll, or the simulation would never quiesce) — unless an arm
           raced ahead of this scan *)
        if t.timer_gen = gen then Lock.Condvar.wait ctx t.timer_cv t.timer_lock
    | Some d when d > now_ns ->
        ignore (Lock.Condvar.wait_timeout ctx t.timer_cv t.timer_lock (d - now_ns))
    | Some _ ->
        (* fire expired deadlines *)
        let expired =
          Hashtbl.fold
            (fun _ c acc ->
              match c.rtx_deadline with
              | Some d when d <= now_ns -> c :: acc
              | _ -> acc)
            t.by_id []
        in
        List.iter
          (fun c ->
            Lock.Mutex.with_lock ctx c.lock (fun () ->
                if outstanding c || c.sb_len > 0 then begin
                  if !debug then
                    Tcp_debug.printf "[%d] TIMER c%d rto=%d una=%d nxt=%d wnd=%d sb=%d\n"
                      (Engine.now (Runtime.engine t.rt)) c.id c.rto
                      (Seq.mask (c.snd_una - c.iss))
                      (Seq.mask (c.snd_nxt - c.iss)) c.snd_wnd c.sb_len;
                  t.retx <- t.retx + 1;
                  Nectar_sim.Trace.instant ~track:t.owner "tcp.retx";
                  c.rto <- Int.min max_rto (c.rto * 2);
                  c.rtt_sample <- None;
                  c.rtx_deadline <- Some (Engine.now (Runtime.engine t.rt) + c.rto);
                  match c.st with
                  | Syn_sent ->
                      c.syn_tries <- c.syn_tries + 1;
                      if c.syn_tries > syn_retry_limit then
                        reset_conn ~by_peer:false ctx c
                      else emit ctx c ~flags:fl_syn ~seq:c.iss ~payload_n:0
                  | Syn_rcvd ->
                      emit ctx c ~flags:(fl_syn lor fl_ack) ~seq:c.iss
                        ~payload_n:0
                  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
                  | Closing | Last_ack
                    when c.data_tries >= data_retry_limit ->
                      (* retry budget exhausted with no ACK progress: abort
                         locally and surface a clean failure to the user *)
                      c.timed_out <- true;
                      reset_conn ~by_peer:false ctx c
                  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
                  | Closing | Last_ack ->
                      c.data_tries <- c.data_tries + 1;
                      let in_flight_data =
                        min c.sb_len (Seq.mask (c.snd_nxt - c.snd_una))
                      in
                      if in_flight_data > 0 then begin
                        (* go-back-N: everything past the lost segment was
                           discarded by the receiver (no out-of-order
                           queueing), so roll snd_nxt back; the data re-flows
                           at full rate once this segment is acked *)
                        let n = min in_flight_data t.mss in
                        c.snd_nxt <- Seq.add c.snd_una n;
                        if c.fin_sent then c.fin_sent <- false;
                        emit ctx c ~flags:fl_ack ~seq:c.snd_una ~payload_n:n
                      end
                      else if c.fin_sent then
                        emit ctx c ~flags:(fl_fin lor fl_ack)
                          ~seq:(Seq.add c.snd_nxt (-1))
                          ~payload_n:0
                      else if c.sb_len > 0 then begin
                        (* zero-window probe: push one segment anyway; the
                           peer's ACK will reopen the window *)
                        let n = min c.sb_len t.mss in
                        let seqp = c.snd_nxt in
                        c.snd_nxt <- Seq.add c.snd_nxt n;
                        emit ctx c ~flags:fl_ack ~seq:seqp ~payload_n:n
                      end
                  | Time_wait | Closed -> disarm_rtx c
                end
                else disarm_rtx c))
          expired)
  done

(* The send-request mailbox: [conn_id u32 | payload bytes]. *)
let rec send_thread t (ctx : Ctx.t) =
  while true do
    let m = Mailbox.begin_get ctx t.send_req in
    let cid = Message.get_u32 m 0 in
    Nectar_util.Copy_meter.record ~owner:t.owner Nectar_util.Copy_meter.App
      (Message.length m - 4);
    let data = Message.read_string m ~pos:4 ~len:(Message.length m - 4) in
    Mailbox.end_get ctx m;
    match Hashtbl.find_opt t.by_id cid with
    | Some c -> send_locked ctx c data
    | None -> ()
  done

and conn_failure c =
  if c.timed_out then Connection_timed_out else Connection_reset

and send_locked (ctx : Ctx.t) c data =
  Lock.Mutex.with_lock ctx c.lock (fun () ->
      let pos = ref 0 in
      let len = String.length data in
      while !pos < len do
        (match c.st with
        | Established | Close_wait -> ()
        | Syn_sent | Syn_rcvd ->
            (* wait for establishment *)
            while c.st = Syn_sent || c.st = Syn_rcvd do
              Lock.Condvar.wait ctx c.changed c.lock
            done
        | _ -> raise (conn_failure c));
        (match c.st with
        | Established | Close_wait -> ()
        | _ -> raise (conn_failure c));
        let free = sndbuf_cap - c.sb_len in
        if free = 0 then Lock.Condvar.wait ctx c.space c.lock
        else begin
          let n = min free (len - !pos) in
          let cap = Bytes.length c.sndbuf in
          let widx = (c.sb_start + c.sb_len) mod cap in
          let run = min n (cap - widx) in
          Nectar_util.Copy_meter.record ~owner:c.tcp.owner
            Nectar_util.Copy_meter.App n;
          Bytes.blit_string data !pos c.sndbuf widx run;
          if run < n then Bytes.blit_string data (!pos + run) c.sndbuf 0 (n - run);
          c.sb_len <- c.sb_len + n;
          pos := !pos + n;
          tcp_output ctx c
        end
      done)

(* ---------- public API ---------- *)

let create ip ?(software_checksum = true) ?(mss = 8192) ?(window = 0xffff)
    ?(input_mode = `Thread) () =
  let rt = Datalink.runtime (Ipv4.datalink ip) in
  let input =
    Runtime.create_mailbox rt ~name:"tcp-input" ~port:Wire.port_tcp_input
      ~byte_limit:(256 * 1024) ~cached_buffer_bytes:0 ()
  in
  let send_req =
    Runtime.create_mailbox rt ~name:"tcp-send-request"
      ~port:Wire.port_tcp_send_request ~byte_limit:(128 * 1024)
      ~cached_buffer_bytes:128 ()
  in
  let eng = Runtime.engine rt in
  let t =
    {
      ip;
      rt;
      owner = Nectar_cab.Cab.name (Runtime.cab rt);
      input;
      send_req;
      sw_checksum = software_checksum;
      mss;
      window_limit = window;
      conns = Hashtbl.create 32;
      by_id = Hashtbl.create 32;
      listeners = Hashtbl.create 8;
      timer_lock = Lock.Mutex.create eng ~name:"tcp-timer-lock";
      timer_cv = Lock.Condvar.create eng ~name:"tcp-timer-cv";
      timer_gen = 0;
      next_conn_id = 1;
      next_port = 10000;
      iss_counter = 1000;
      seg_in = 0;
      seg_out = 0;
      retx = 0;
      bad_cksum = 0;
    }
  in
  Ipv4.register ip ~proto:Ipv4.proto_tcp input;
  (match input_mode with
  | `Thread ->
      ignore
        (Thread.create (Runtime.cab rt) ~priority:Thread.System
           ~name:"tcp-input" (input_thread t))
  | `Interrupt ->
      Mailbox.set_upcall input
        (Some
           (fun ctx mb ->
             match Mailbox.try_begin_get ctx mb with
             | Some msg -> process_segment ctx t msg
             | None -> ())));
  ignore
    (Thread.create (Runtime.cab rt) ~priority:Thread.System ~name:"tcp-send"
       (send_thread t));
  ignore
    (Thread.create (Runtime.cab rt) ~priority:Thread.System ~name:"tcp-timer"
       (timer_thread t));
  t

let listen t ~port ~on_accept =
  if Hashtbl.mem t.listeners port then invalid_arg "Tcp.listen: port in use";
  Hashtbl.replace t.listeners port on_accept

let connect (ctx : Ctx.t) t ~dst ~dst_port ?src_port () =
  Ctx.assert_may_block ctx "Tcp.connect";
  let lport =
    match src_port with
    | Some p -> p
    | None ->
        t.next_port <- t.next_port + 1;
        t.next_port
  in
  let c =
    make_conn t ~lport ~raddr:dst ~rport:dst_port ~st:Syn_sent
      ~iss:(fresh_iss t) ~rcv_nxt:0
  in
  Lock.Mutex.with_lock ctx c.lock (fun () ->
      arm_rtx c;
      emit ctx c ~flags:fl_syn ~seq:c.iss ~payload_n:0;
      while c.st = Syn_sent do
        Lock.Condvar.wait ctx c.changed c.lock
      done;
      match c.st with
      | Established -> ()
      | Closed ->
          if c.was_reset then raise Connection_refused
          else raise Connection_timed_out
      | _ -> raise Connection_refused);
  c

let send ctx c data = send_locked ctx c data

let recv_mailbox c = c.recv_mb

let recv_string (ctx : Ctx.t) c =
  let m = Mailbox.begin_get ctx c.recv_mb in
  Nectar_util.Copy_meter.record ~owner:c.tcp.owner Nectar_util.Copy_meter.App
    (Message.length m);
  let s = Message.to_string m in
  Mailbox.end_get ctx m;
  s

let close (ctx : Ctx.t) c =
  Ctx.assert_may_block ctx "Tcp.close";
  Lock.Mutex.with_lock ctx c.lock (fun () ->
      match c.st with
      | Closed | Time_wait | Last_ack | Closing | Fin_wait_1 | Fin_wait_2 ->
          ()
      | Syn_sent ->
          c.st <- Closed;
          remove_conn c
      | Syn_rcvd | Established | Close_wait ->
          c.fin_pending <- true;
          tcp_output ctx c;
          while
            match c.st with
            | Fin_wait_2 | Time_wait | Closed -> false
            | _ -> true
          do
            Lock.Condvar.wait ctx c.changed c.lock
          done)

let failure c =
  if c.timed_out then `Timed_out
  else if c.was_reset then `Reset
  else `None

let state_name c = state_to_string c.st
let local_port c = c.lport
let remote c = (c.raddr, c.rport)
let segments_in t = t.seg_in
let segments_out t = t.seg_out
let retransmissions t = t.retx

let register_metrics t reg ~prefix =
  let c name read = Nectar_util.Metrics.counter reg (prefix ^ name) read in
  c "tcp.segments_in" (fun () -> segments_in t);
  c "tcp.segments_out" (fun () -> segments_out t);
  c "tcp.retransmissions" (fun () -> retransmissions t)
let bad_checksums t = t.bad_cksum
let send_request_mailbox t = t.send_req
let conn_by_id t id = Hashtbl.find_opt t.by_id id
let conn_id c = c.id
