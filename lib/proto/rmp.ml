open Nectar_core
open Nectar_sim
module Costs = Nectar_cab.Costs
module Router = Nectar_route.Router

let header_bytes = 12

let ty_data = 0
let ty_ack = 1

exception Delivery_timeout of { dst_cab : int; dst_port : int }

(* A data message the windowed sender has transmitted but not yet retired.
   The buffer must outlive every queued tx copy (the DMA snapshots at queue
   drain, not at queue time), so disposal waits for both the cumulative ack
   ([done_]) and the last queued copy ([queued = 0]). *)
type inflight = {
  if_seq : int;
  if_msg : Message.t;
  mutable if_queued : int; (* tx copies still in the transmit queue *)
  mutable if_done : bool; (* acked or abandoned *)
  mutable if_sent_at : Sim_time.t; (* last (re)transmission time *)
  mutable if_tries : int; (* retransmissions so far *)
}

type channel = {
  busy : Resource.t; (* serialises senders *)
  mutable next_seq : int;
  mutable acked : int; (* highest acknowledged seq (acks are cumulative) *)
  ack_q : Waitq.t;
      (* window = 1: the blocked sender waits here for its ack.
         window > 1: the retransmit daemon waits here for ack progress. *)
  ch_dst_cab : int;
  ch_dst_port : int;
  (* windowed-mode state; inert when window = 1 *)
  inflight : inflight Queue.t; (* oldest (lowest seq) first *)
  window_q : Waitq.t; (* admission and [flush] wait for window space *)
  mutable daemon : bool; (* retransmit daemon started *)
  mutable failed : bool; (* latched after the retry budget is exhausted *)
}

type t = {
  dl : Datalink.t;
  rt : Runtime.t;
  input : Mailbox.t;
  rto : Sim_time.span;
  max_retries : int;
  window : int;
  ack_delay : Sim_time.span; (* ack coalescing delay; windowed mode only *)
  channels : (int, channel) Hashtbl.t; (* Int_key.cab_port (dst_cab, dst_port) *)
  expected : (int, int) Hashtbl.t;
      (* Int_key.cab_port (src_cab, dst_port) -> next expected seq *)
  stash : (int, (int, Message.t) Hashtbl.t) Hashtbl.t;
      (* windowed receiver: out-of-order frames held until the gap fills,
         keyed like [expected], inner table seq -> message *)
  ack_timers : (int, unit) Hashtbl.t;
      (* receiver channels with a coalesced ack pending *)
  mutable delivered_count : int;
  mutable dup_count : int;
  mutable retx_count : int;
  mutable failed_count : int; (* messages abandoned by the windowed sender *)
}

(* Header: type u8 | flags u8 | dst_port u16 | src_port u16 | pad u16 |
   seq u32 *)

let write_header (msg : Message.t) ~ty ~dst_port ~seq =
  Message.set_u8 msg 0 ty;
  Message.set_u8 msg 1 0;
  Message.set_u16 msg 2 dst_port;
  Message.set_u16 msg 4 0;
  Message.set_u16 msg 6 0;
  Message.set_u32 msg 8 seq

let channel t ~dst_cab ~dst_port =
  let key = Nectar_util.Int_key.cab_port ~cab:dst_cab ~port:dst_port in
  match Hashtbl.find_opt t.channels key with
  | Some c -> c
  | None ->
      let eng = Runtime.engine t.rt in
      let c =
        {
          busy =
            Resource.create eng
              ~name:(Printf.sprintf "rmp-ch-%d-%d" dst_cab dst_port)
              ();
          next_seq = 1;
          acked = 0;
          ack_q = Waitq.create eng ~name:"rmp-ack" ();
          ch_dst_cab = dst_cab;
          ch_dst_port = dst_port;
          inflight = Queue.create ();
          window_q = Waitq.create eng ~name:"rmp-window" ();
          daemon = false;
          failed = false;
        }
      in
      Hashtbl.replace t.channels key c;
      c

let send_ack t ctx ~dst_cab ~dst_port ~seq =
  match Datalink.alloc_frame ctx t.dl header_bytes with
  | None -> () (* no transmit space: the sender will retransmit *)
  | Some ack -> (
      write_header ack ~ty:ty_ack ~dst_port ~seq;
      try
        Datalink.output ctx t.dl ~dst_cab ~proto:Wire.proto_rmp ~msg:ack
          ~on_done:Mailbox.dispose
      with Router.Route_down _ | Router.No_route _ ->
        (* no live return path: drop the ack, the sender retransmits *)
        Mailbox.dispose ctx ack)

(* {2 Windowed sender} *)

let release_entry ctx entry =
  if entry.if_done && entry.if_queued = 0 then Mailbox.dispose ctx entry.if_msg

let transmit t ctx c entry =
  entry.if_queued <- entry.if_queued + 1;
  entry.if_sent_at <- Engine.now (Runtime.engine t.rt);
  try
    Datalink.output ctx t.dl ~dst_cab:c.ch_dst_cab ~proto:Wire.proto_rmp
      ~msg:entry.if_msg
      ~on_done:(fun ctx _ ->
        entry.if_queued <- entry.if_queued - 1;
        release_entry ctx entry)
  with Router.Route_down _ | Router.No_route _ ->
    (* typed refusal before the wire: roll back the queued count (the
       frame was never handed to the DMA) and let the retransmit daemon
       retry after the next RTO, by when routes may have reconverged *)
    entry.if_queued <- entry.if_queued - 1

(* Retransmit daemon: one system thread per windowed channel.  Only the
   head of the window is retransmitted — cumulative acks mean a head
   retransmission is exactly what fills the receiver's gap (the receiver
   stashes the later frames it already has). *)
let daemon_body t c (dctx : Ctx.t) =
  let eng = Runtime.engine t.rt in
  while true do
    match Queue.peek_opt c.inflight with
    | None -> Waitq.wait c.ack_q
    | Some e ->
        let deadline = e.if_sent_at + t.rto in
        let now = Engine.now eng in
        if now < deadline then
          (* Signaled (ack progress: head may have been retired) or timed
             out (head due for retransmission): either way, re-examine. *)
          ignore (Waitq.wait_timeout c.ack_q (deadline - now))
        else if e.if_tries >= t.max_retries then begin
          (* Retry budget exhausted: latch the channel as failed and
             abandon the whole window; [send]/[flush] surface it. *)
          c.failed <- true;
          Queue.iter
            (fun e ->
              t.failed_count <- t.failed_count + 1;
              e.if_done <- true;
              release_entry dctx e)
            c.inflight;
          Queue.clear c.inflight;
          ignore (Waitq.broadcast c.window_q)
        end
        else begin
          e.if_tries <- e.if_tries + 1;
          t.retx_count <- t.retx_count + 1;
          Nectar_sim.Trace.instant
            ~track:(Nectar_cab.Cab.name (Runtime.cab t.rt))
            "rmp.retx";
          transmit t dctx c e
        end
  done

let ensure_daemon t c =
  if not c.daemon then begin
    c.daemon <- true;
    ignore
      (Thread.create (Runtime.cab t.rt) ~priority:Thread.System
         ~name:(Printf.sprintf "rmp-retx-%d-%d" c.ch_dst_cab c.ch_dst_port)
         (daemon_body t c))
  end

(* {2 Receiver} *)

let deliver t ctx (msg : Message.t) ~dst_port =
  Message.adjust_head msg header_bytes;
  match Runtime.mailbox_at t.rt ~port:dst_port with
  | Some mbox ->
      t.delivered_count <- t.delivered_count + 1;
      Nectar_sim.Trace.instant
        ~track:(Nectar_cab.Cab.name (Runtime.cab t.rt))
        "rmp.deliver";
      Mailbox.enqueue ctx msg mbox
  | None -> Mailbox.dispose ctx msg

(* Cumulative ack for a receive channel, optionally coalesced: within
   [ack_delay] of the first unacknowledged delivery, further deliveries
   ride on the same pending ack.  The timer fires outside interrupt
   context, so the ack itself is posted as an interrupt (acks charge
   interrupt-level CPU, like all RMP protocol work). *)
let schedule_ack t ctx ~src_cab ~dst_port key =
  let cum_seq () =
    Option.value (Hashtbl.find_opt t.expected key) ~default:1 - 1
  in
  if t.ack_delay = 0 then
    send_ack t ctx ~dst_cab:src_cab ~dst_port ~seq:(cum_seq ())
  else if not (Hashtbl.mem t.ack_timers key) then begin
    Hashtbl.replace t.ack_timers key ();
    ignore
      (Engine.after (Runtime.engine t.rt) t.ack_delay (fun () ->
           Nectar_cab.Interrupts.post
             (Nectar_cab.Cab.irq (Runtime.cab t.rt))
             ~name:"rmp-coalesced-ack"
             (fun ictx ->
               Hashtbl.remove t.ack_timers key;
               let ctx = Ctx.of_interrupt ictx in
               send_ack t ctx ~dst_cab:src_cab ~dst_port ~seq:(cum_seq ()))))
  end

let stash_for t key =
  match Hashtbl.find_opt t.stash key with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.stash key s;
      s

(* Windowed data path: in-order frames are delivered immediately and drain
   any stashed successors; out-of-order frames are stashed (bounded) so a
   single head retransmission repairs a loss without resending the rest of
   the window. *)
let windowed_data t ctx (msg : Message.t) ~src_cab ~dst_port ~seq key =
  let expected = Option.value (Hashtbl.find_opt t.expected key) ~default:1 in
  if seq < expected then begin
    t.dup_count <- t.dup_count + 1;
    schedule_ack t ctx ~src_cab ~dst_port key;
    Mailbox.dispose ctx msg
  end
  else if seq = expected then begin
    deliver t ctx msg ~dst_port;
    let next = ref (seq + 1) in
    let s = stash_for t key in
    let continue_drain = ref (Hashtbl.length s > 0) in
    while !continue_drain do
      match Hashtbl.find_opt s !next with
      | Some stashed ->
          Hashtbl.remove s !next;
          deliver t ctx stashed ~dst_port;
          incr next
      | None -> continue_drain := false
    done;
    Hashtbl.replace t.expected key !next;
    schedule_ack t ctx ~src_cab ~dst_port key
  end
  else begin
    (* gap: the frame for [expected] was lost or reordered *)
    let s = stash_for t key in
    if Hashtbl.mem s seq then begin
      t.dup_count <- t.dup_count + 1;
      Mailbox.dispose ctx msg
    end
    else if Hashtbl.length s >= 2 * t.window then
      (* stash full (sender far ahead): drop without acknowledging; the
         sender's retransmissions will resupply *)
      Mailbox.dispose ctx msg
    else Hashtbl.replace s seq msg;
    (* re-ack the cumulative front so a lost ack cannot stall the sender *)
    schedule_ack t ctx ~src_cab ~dst_port key
  end

(* Interrupt-level input processing for both DATA and ACK frames. *)
let end_of_data t ctx (msg : Message.t) ~src_cab =
  ctx.Ctx.work Costs.rmp_ns;
  if Message.length msg < header_bytes then Mailbox.dispose ctx msg
  else begin
    let ty = Message.get_u8 msg 0 in
    let dst_port = Message.get_u16 msg 2 in
    let seq = Message.get_u32 msg 8 in
    if ty = ty_ack then begin
      let c = channel t ~dst_cab:src_cab ~dst_port in
      if seq > c.acked then begin
        c.acked <- seq;
        (* retire acknowledged window entries (empty when window = 1: the
           blocked sender owns its buffer) *)
        let continue_retire = ref (not (Queue.is_empty c.inflight)) in
        while !continue_retire do
          match Queue.peek_opt c.inflight with
          | Some e when e.if_seq <= c.acked ->
              ignore (Queue.pop c.inflight);
              e.if_done <- true;
              release_entry ctx e;
              ignore (Waitq.broadcast c.window_q)
          | _ -> continue_retire := false
        done;
        (* An ack that advances the window restarts the retransmit clock
           for the newly exposed head.  Its own [if_sent_at] was stamped
           when it was handed to the datalink, which at deep windows
           predates its actual wire slot by many frame times — judged
           against that stamp, a clean pipeline looks timed out. *)
        (match Queue.peek_opt c.inflight with
        | Some e -> e.if_sent_at <- Engine.now (Runtime.engine t.rt)
        | None -> ());
        ignore (Waitq.broadcast c.ack_q)
      end;
      Mailbox.dispose ctx msg
    end
    else if t.window = 1 then begin
      let key = Nectar_util.Int_key.cab_port ~cab:src_cab ~port:dst_port in
      let expected =
        Option.value (Hashtbl.find_opt t.expected key) ~default:1
      in
      if seq < expected then begin
        (* duplicate from a retransmission: re-ack, drop *)
        t.dup_count <- t.dup_count + 1;
        send_ack t ctx ~dst_cab:src_cab ~dst_port ~seq;
        Mailbox.dispose ctx msg
      end
      else begin
        Hashtbl.replace t.expected key (seq + 1);
        send_ack t ctx ~dst_cab:src_cab ~dst_port ~seq;
        Message.adjust_head msg header_bytes;
        match Runtime.mailbox_at t.rt ~port:dst_port with
        | Some mbox ->
            t.delivered_count <- t.delivered_count + 1;
            Mailbox.enqueue ctx msg mbox
        | None -> Mailbox.dispose ctx msg
      end
    end
    else
      let key = Nectar_util.Int_key.cab_port ~cab:src_cab ~port:dst_port in
      windowed_data t ctx msg ~src_cab ~dst_port ~seq key
  end

let create dl ?(rto = Sim_time.ms 5) ?(max_retries = 8) ?(window = 1)
    ?(ack_delay = 0) () =
  if window < 1 then invalid_arg "Rmp.create: window must be >= 1";
  if ack_delay < 0 then invalid_arg "Rmp.create: negative ack_delay";
  let rt = Datalink.runtime dl in
  let input =
    (* a windowed receiver may hold a stash of out-of-order frames on top
       of the frames in flight, so scale the input pool with the window *)
    Runtime.create_mailbox rt ~name:"rmp-input"
      ~byte_limit:(128 * 1024 * min window 16)
      ~cached_buffer_bytes:0 ()
  in
  let t =
    {
      dl;
      rt;
      input;
      rto;
      max_retries;
      window;
      ack_delay;
      channels = Hashtbl.create 8;
      expected = Hashtbl.create 8;
      stash = Hashtbl.create 8;
      ack_timers = Hashtbl.create 8;
      delivered_count = 0;
      dup_count = 0;
      retx_count = 0;
      failed_count = 0;
    }
  in
  Datalink.register dl ~proto:Wire.proto_rmp
    {
      Datalink.input_mailbox = input;
      proto_header_len = header_bytes;
      start_of_data = None;
      end_of_data = (fun ctx msg ~src_cab -> end_of_data t ctx msg ~src_cab);
    };
  t

let alloc ctx t n =
  let msg = Datalink.alloc_frame_blocking ctx t.dl (header_bytes + n) in
  Message.adjust_head msg header_bytes;
  msg

(* Stop-and-wait send (window = 1): blocks until the ack, exactly the
   paper's protocol. *)
let stop_and_wait_send (ctx : Ctx.t) t ~dst_cab ~dst_port msg =
  let c = channel t ~dst_cab ~dst_port in
  Resource.with_held c.busy (fun () ->
      ctx.work Costs.rmp_ns;
      let seq = c.next_seq in
      c.next_seq <- seq + 1;
      Message.push_head msg header_bytes;
      write_header msg ~ty:ty_data ~dst_port ~seq;
      (* The tx DMA reads the frame out of the buffer only when the transmit
         queue drains down to it, so the buffer must outlive every queued
         copy — not merely the ACK: under congestion the ACK for an earlier
         copy can arrive while a retransmission is still queued.  Disposing
         then would let the allocator recycle the bytes under the queued
         frame, and the eventual snapshot would carry another message's
         data onto the wire. *)
      let queued = ref 0 and sender_done = ref false in
      let release ctx =
        if !sender_done && !queued = 0 then Mailbox.dispose ctx msg
      in
      let rec attempt tries =
        if tries > t.max_retries then begin
          sender_done := true;
          release ctx;
          raise (Delivery_timeout { dst_cab; dst_port })
        end;
        (* [Datalink.output] restores the message to this view after queueing
           the frame, so a retransmission simply sends the same message. *)
        if tries > 0 then begin
          t.retx_count <- t.retx_count + 1;
          Nectar_sim.Trace.instant
            ~track:(Nectar_cab.Cab.name (Runtime.cab t.rt))
            "rmp.retx"
        end;
        incr queued;
        (try
           Datalink.output ctx t.dl ~dst_cab ~proto:Wire.proto_rmp ~msg
             ~on_done:(fun ctx _ ->
               decr queued;
               release ctx)
         with
        | Router.Route_down _ ->
            (* refused before the wire (blackout window): wait out the RTO
               exactly like a frame lost on the wire, then retry — by then
               the routes may have reconverged onto an alternate path *)
            decr queued
        | Router.No_route _ as e ->
            (* statically partitioned: no amount of retrying helps;
               surface the typed error with the buffer reclaimed *)
            decr queued;
            sender_done := true;
            release ctx;
            raise e);
        let rec await () =
          if c.acked >= seq then ()
          else
            match Waitq.wait_timeout c.ack_q t.rto with
            | `Signaled -> await ()
            | `Timeout -> attempt (tries + 1)
        in
        await ()
      in
      attempt 0;
      sender_done := true;
      release ctx)

(* Windowed send: blocks only for window admission; the ack, retransmission
   and buffer disposal are handled asynchronously (ack handler + daemon). *)
let windowed_send (ctx : Ctx.t) t ~dst_cab ~dst_port msg =
  let c = channel t ~dst_cab ~dst_port in
  Resource.with_held c.busy (fun () ->
      if c.failed then raise (Delivery_timeout { dst_cab; dst_port });
      ctx.work Costs.rmp_ns;
      while Queue.length c.inflight >= t.window && not c.failed do
        Waitq.wait c.window_q
      done;
      if c.failed then raise (Delivery_timeout { dst_cab; dst_port });
      let seq = c.next_seq in
      c.next_seq <- seq + 1;
      Message.push_head msg header_bytes;
      write_header msg ~ty:ty_data ~dst_port ~seq;
      let entry =
        {
          if_seq = seq;
          if_msg = msg;
          if_queued = 0;
          if_done = false;
          if_sent_at = 0;
          if_tries = 0;
        }
      in
      Queue.add entry c.inflight;
      transmit t ctx c entry;
      ensure_daemon t c;
      (* wake the daemon so its retransmit deadline covers the new head *)
      ignore (Waitq.broadcast c.ack_q))

let send (ctx : Ctx.t) t ~dst_cab ~dst_port msg =
  Ctx.assert_may_block ctx "Rmp.send";
  let tid =
    Nectar_sim.Trace.span_begin
      ~track:(Nectar_cab.Cab.name (Runtime.cab t.rt))
      "rmp.send"
  in
  Fun.protect
    ~finally:(fun () -> Nectar_sim.Trace.span_end tid)
    (fun () ->
      if t.window = 1 then stop_and_wait_send ctx t ~dst_cab ~dst_port msg
      else windowed_send ctx t ~dst_cab ~dst_port msg)

let flush (ctx : Ctx.t) t ~dst_cab ~dst_port =
  Ctx.assert_may_block ctx "Rmp.flush";
  if t.window > 1 then begin
    let c = channel t ~dst_cab ~dst_port in
    while not (Queue.is_empty c.inflight || c.failed) do
      Waitq.wait c.window_q
    done;
    if c.failed then raise (Delivery_timeout { dst_cab; dst_port })
  end

let send_string ctx t ~dst_cab ~dst_port s =
  let msg = alloc ctx t (String.length s) in
  (* the string API's one unavoidable copy: application data entering the
     mailbox buffer.  Everything below here is zero-copy *)
  Nectar_util.Copy_meter.record
    ~owner:(Nectar_cab.Cab.name (Runtime.cab t.rt))
    Nectar_util.Copy_meter.App (String.length s);
  Message.write_string msg 0 s;
  send ctx t ~dst_cab ~dst_port msg

let window t = t.window
let rto t = t.rto
let delivered t = t.delivered_count
let duplicates t = t.dup_count
let retransmits t = t.retx_count
let failed_sends t = t.failed_count

let register_metrics t reg ~prefix =
  let c name read = Nectar_util.Metrics.counter reg (prefix ^ name) read in
  c "rmp.delivered" (fun () -> delivered t);
  c "rmp.duplicates" (fun () -> duplicates t);
  c "rmp.retransmits" (fun () -> retransmits t);
  c "rmp.failed_sends" (fun () -> failed_sends t)
