open Nectar_core
open Nectar_sim
module Costs = Nectar_cab.Costs

let header_bytes = 12

let ty_data = 0
let ty_ack = 1

exception Delivery_timeout of { dst_cab : int; dst_port : int }

type channel = {
  busy : Resource.t; (* serialises senders: one outstanding message *)
  mutable next_seq : int;
  mutable acked : int; (* highest acknowledged seq *)
  ack_q : Waitq.t;
}

type t = {
  dl : Datalink.t;
  rt : Runtime.t;
  input : Mailbox.t;
  rto : Sim_time.span;
  max_retries : int;
  channels : (int * int, channel) Hashtbl.t; (* (dst_cab, dst_port) *)
  expected : (int * int, int) Hashtbl.t; (* (src_cab, dst_port) -> next seq *)
  mutable delivered_count : int;
  mutable dup_count : int;
  mutable retx_count : int;
}

(* Header: type u8 | flags u8 | dst_port u16 | src_port u16 | pad u16 |
   seq u32 *)

let write_header (msg : Message.t) ~ty ~dst_port ~seq =
  Message.set_u8 msg 0 ty;
  Message.set_u8 msg 1 0;
  Message.set_u16 msg 2 dst_port;
  Message.set_u16 msg 4 0;
  Message.set_u16 msg 6 0;
  Message.set_u32 msg 8 seq

let channel t ~dst_cab ~dst_port =
  let key = (dst_cab, dst_port) in
  match Hashtbl.find_opt t.channels key with
  | Some c -> c
  | None ->
      let eng = Runtime.engine t.rt in
      let c =
        {
          busy =
            Resource.create eng
              ~name:(Printf.sprintf "rmp-ch-%d-%d" dst_cab dst_port)
              ();
          next_seq = 1;
          acked = 0;
          ack_q = Waitq.create eng ~name:"rmp-ack" ();
        }
      in
      Hashtbl.replace t.channels key c;
      c

let send_ack t ctx ~dst_cab ~dst_port ~seq =
  match Datalink.alloc_frame ctx t.dl header_bytes with
  | None -> () (* no transmit space: the sender will retransmit *)
  | Some ack ->
      write_header ack ~ty:ty_ack ~dst_port ~seq;
      Datalink.output ctx t.dl ~dst_cab ~proto:Wire.proto_rmp ~msg:ack
        ~on_done:Mailbox.dispose

(* Interrupt-level input processing for both DATA and ACK frames. *)
let end_of_data t ctx (msg : Message.t) ~src_cab =
  ctx.Ctx.work Costs.rmp_ns;
  if Message.length msg < header_bytes then Mailbox.dispose ctx msg
  else begin
    let ty = Message.get_u8 msg 0 in
    let dst_port = Message.get_u16 msg 2 in
    let seq = Message.get_u32 msg 8 in
    if ty = ty_ack then begin
      let c = channel t ~dst_cab:src_cab ~dst_port in
      if seq > c.acked then begin
        c.acked <- seq;
        ignore (Waitq.broadcast c.ack_q)
      end;
      Mailbox.dispose ctx msg
    end
    else begin
      let key = (src_cab, dst_port) in
      let expected =
        Option.value (Hashtbl.find_opt t.expected key) ~default:1
      in
      if seq < expected then begin
        (* duplicate from a retransmission: re-ack, drop *)
        t.dup_count <- t.dup_count + 1;
        send_ack t ctx ~dst_cab:src_cab ~dst_port ~seq;
        Mailbox.dispose ctx msg
      end
      else begin
        Hashtbl.replace t.expected key (seq + 1);
        send_ack t ctx ~dst_cab:src_cab ~dst_port ~seq;
        Message.adjust_head msg header_bytes;
        match Runtime.mailbox_at t.rt ~port:dst_port with
        | Some mbox ->
            t.delivered_count <- t.delivered_count + 1;
            Mailbox.enqueue ctx msg mbox
        | None -> Mailbox.dispose ctx msg
      end
    end
  end

let create dl ?(rto = Sim_time.ms 5) ?(max_retries = 8) () =
  let rt = Datalink.runtime dl in
  let input =
    Runtime.create_mailbox rt ~name:"rmp-input" ~byte_limit:(128 * 1024)
      ~cached_buffer_bytes:0 ()
  in
  let t =
    {
      dl;
      rt;
      input;
      rto;
      max_retries;
      channels = Hashtbl.create 8;
      expected = Hashtbl.create 8;
      delivered_count = 0;
      dup_count = 0;
      retx_count = 0;
    }
  in
  Datalink.register dl ~proto:Wire.proto_rmp
    {
      Datalink.input_mailbox = input;
      proto_header_len = header_bytes;
      start_of_data = None;
      end_of_data = (fun ctx msg ~src_cab -> end_of_data t ctx msg ~src_cab);
    };
  t

let alloc ctx t n =
  let msg = Datalink.alloc_frame_blocking ctx t.dl (header_bytes + n) in
  Message.adjust_head msg header_bytes;
  msg

let send (ctx : Ctx.t) t ~dst_cab ~dst_port msg =
  Ctx.assert_may_block ctx "Rmp.send";
  let c = channel t ~dst_cab ~dst_port in
  Resource.with_held c.busy (fun () ->
      ctx.work Costs.rmp_ns;
      let seq = c.next_seq in
      c.next_seq <- seq + 1;
      Message.push_head msg header_bytes;
      write_header msg ~ty:ty_data ~dst_port ~seq;
      (* The tx DMA reads the frame out of the buffer only when the transmit
         queue drains down to it, so the buffer must outlive every queued
         copy — not merely the ACK: under congestion the ACK for an earlier
         copy can arrive while a retransmission is still queued.  Disposing
         then would let the allocator recycle the bytes under the queued
         frame, and the eventual snapshot would carry another message's
         data onto the wire. *)
      let queued = ref 0 and sender_done = ref false in
      let release ctx =
        if !sender_done && !queued = 0 then Mailbox.dispose ctx msg
      in
      let rec attempt tries =
        if tries > t.max_retries then begin
          sender_done := true;
          release ctx;
          raise (Delivery_timeout { dst_cab; dst_port })
        end;
        (* [Datalink.output] restores the message to this view after queueing
           the frame, so a retransmission simply sends the same message. *)
        if tries > 0 then t.retx_count <- t.retx_count + 1;
        incr queued;
        Datalink.output ctx t.dl ~dst_cab ~proto:Wire.proto_rmp ~msg
          ~on_done:(fun ctx _ ->
            decr queued;
            release ctx);
        let rec await () =
          if c.acked >= seq then ()
          else
            match Waitq.wait_timeout c.ack_q t.rto with
            | `Signaled -> await ()
            | `Timeout -> attempt (tries + 1)
        in
        await ()
      in
      attempt 0;
      sender_done := true;
      release ctx)

let send_string ctx t ~dst_cab ~dst_port s =
  let msg = alloc ctx t (String.length s) in
  Message.write_string msg 0 s;
  send ctx t ~dst_cab ~dst_port msg

let delivered t = t.delivered_count
let duplicates t = t.dup_count
let retransmits t = t.retx_count
