(** Console tracing for TCP internals — the one place in the protocol tree
    allowed to print (the lint bans stdout printers in [lib/] outside
    dump/debug modules).  Off by default; never consulted on the fast path
    beyond one ref read. *)

val enabled : bool ref
val printf : ('a, out_channel, unit) format -> 'a
