(** RMP: the Nectar-specific reliable message protocol (paper §4, §6.2) —
    "a simple stop-and-wait protocol".

    By default ([window = 1]) one message is outstanding per channel (a
    (destination CAB, port) pair); the sender blocks until the receiver's
    acknowledgement, with timeout-driven retransmission.  No software
    checksum is computed — reliability rides on the hardware CRC (that is
    the Figure 7 point: RMP reaches ~90 Mbit/s where checksumming TCP
    cannot).

    [create ~window:n] with [n > 1] enables a beyond-the-paper sliding
    window: up to [n] unacknowledged messages per channel, cumulative
    acknowledgements, a per-channel retransmit daemon (head-of-window
    only — the receiver stashes out-of-order frames, so one head
    retransmission repairs a loss), and optional ack coalescing
    ([ack_delay]).  Windowed {!send} returns once the message is admitted
    to the window and transmitted; use {!flush} to wait for
    acknowledgement of everything sent.

    Delivery semantics at every window size: exactly-once, in order, per
    channel; duplicate frames from retransmissions are acknowledged but
    not re-delivered. *)

type t

val header_bytes : int

exception Delivery_timeout of { dst_cab : int; dst_port : int }

val create :
  Datalink.t ->
  ?rto:Nectar_sim.Sim_time.span ->
  ?max_retries:int ->
  ?window:int ->
  ?ack_delay:Nectar_sim.Sim_time.span ->
  unit ->
  t
(** [window] (default 1) is the per-channel limit on unacknowledged
    messages; 1 is the paper's stop-and-wait, byte-for-byte.  [ack_delay]
    (default 0, windowed mode only) coalesces acknowledgements: deliveries
    within [ack_delay] of the first unacknowledged one share a single
    cumulative ack frame. *)

val alloc : Nectar_core.Ctx.t -> t -> int -> Nectar_core.Message.t

val send :
  Nectar_core.Ctx.t ->
  t ->
  dst_cab:int ->
  dst_port:int ->
  Nectar_core.Message.t ->
  unit
(** Reliable send.  With [window = 1]: blocks until the message is
    acknowledged (the buffer is then freed) and raises {!Delivery_timeout}
    after the retry budget.  With [window > 1]: blocks only while the
    window is full; acknowledgement, retransmission and buffer disposal
    happen asynchronously, and a channel whose retry budget was exhausted
    raises {!Delivery_timeout} on this and every later send (the failure
    latches — see {!flush}).  Concurrent senders on one channel are
    serialised FIFO. *)

val flush : Nectar_core.Ctx.t -> t -> dst_cab:int -> dst_port:int -> unit
(** Block until every message sent on the channel has been acknowledged.
    Raises {!Delivery_timeout} if the channel's retry budget was exhausted
    (messages still unacknowledged at that point are dropped and counted
    in {!failed_sends}).  No-op at [window = 1]. *)

val send_string :
  Nectar_core.Ctx.t -> t -> dst_cab:int -> dst_port:int -> string -> unit

val window : t -> int

val rto : t -> Nectar_sim.Sim_time.span
(** The retransmission interval: the interval between send (or previous
    retransmission) and the next retry while unacknowledged.  Failover
    campaigns use it to bound the blackout window. *)

val delivered : t -> int
val duplicates : t -> int
val retransmits : t -> int

val failed_sends : t -> int
(** Messages abandoned by a windowed channel whose retry budget ran out.
    Always 0 at [window = 1] (the failure is raised at the blocked sender
    instead). *)

val register_metrics : t -> Nectar_util.Metrics.t -> prefix:string -> unit
(** Register delivered/duplicates/retransmits/failed_sends as
    [<prefix>rmp.*]. *)
