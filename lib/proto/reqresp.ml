open Nectar_core
open Nectar_sim
module Costs = Nectar_cab.Costs
module Router = Nectar_route.Router

let header_bytes = 12

let ty_request = 0
let ty_response = 1

exception Call_timeout of { dst_cab : int; dst_port : int }

type pending = { resp_q : Waitq.t; mutable response : string option }

type server = {
  mode : server_mode;
  handler : Ctx.t -> string -> string;
  (* at-most-once duplicate cache, keyed by
     [Int_key.cab_txn (client_cab, txn)] *)
  replies : (int, string) Hashtbl.t;
  reply_order : int Queue.t;
  (* requests whose handler is still running: retransmitted duplicates are
     dropped, not re-executed *)
  in_flight : (int, unit) Hashtbl.t;
}

and server_mode = Thread_server | Upcall_server

type t = {
  dl : Datalink.t;
  rt : Runtime.t;
  owner : string;  (* CAB name, labels this node's copy-meter records *)
  input : Mailbox.t;
  rto : Sim_time.span;
  max_retries : int;
  mutable next_txn : int;
  pending_calls : (int, pending) Hashtbl.t;
  servers : (int, server) Hashtbl.t;
  server_work : Mailbox.t; (* thread-mode request queue *)
  mutable server_thread : Thread.t option;
  mutable completed : int;
  mutable served : int;
  mutable dups : int;
}

(* Header: type u8 | flags u8 | dst_port u16 | txn u32 | payload_len u16 |
   pad u16 *)

let write_header (msg : Message.t) ~ty ~dst_port ~txn =
  Message.set_u8 msg 0 ty;
  Message.set_u8 msg 1 0;
  Message.set_u16 msg 2 dst_port;
  Message.set_u32 msg 4 txn;
  Message.set_u16 msg 8 (Message.length msg - header_bytes);
  Message.set_u16 msg 10 0

let reply_cache_cap = 128

let cache_reply server ~client_cab ~txn response =
  if Hashtbl.length server.replies >= reply_cache_cap then begin
    match Queue.take_opt server.reply_order with
    | Some oldest -> Hashtbl.remove server.replies oldest
    | None -> ()
  end;
  let key = Nectar_util.Int_key.cab_txn ~cab:client_cab ~txn in
  Hashtbl.replace server.replies key response;
  Queue.add key server.reply_order

let send_response t ctx ~dst_cab ~dst_port ~txn response =
  match
    Datalink.alloc_frame ctx t.dl (header_bytes + String.length response)
  with
  | None -> () (* client will retransmit the request *)
  | Some msg -> (
      Nectar_util.Copy_meter.record ~owner:t.owner Nectar_util.Copy_meter.App
        (String.length response);
      Message.write_string msg header_bytes response;
      write_header msg ~ty:ty_response ~dst_port ~txn;
      try
        Datalink.output ctx t.dl ~dst_cab ~proto:Wire.proto_reqresp ~msg
          ~on_done:Mailbox.dispose
      with Router.Route_down _ | Router.No_route _ ->
        (* no live return path: drop the response — the reply cache
           answers the client's retransmitted request after recovery *)
        Mailbox.dispose ctx msg)

let run_handler t ctx server ~client_cab ~dst_port ~txn request =
  Nectar_sim.Trace.instant ~track:t.owner "rpc.serve";
  ctx.Ctx.work Costs.reqresp_ns;
  let key = Nectar_util.Int_key.cab_txn ~cab:client_cab ~txn in
  match Hashtbl.find_opt server.replies key with
  | Some cached ->
      t.dups <- t.dups + 1;
      send_response t ctx ~dst_cab:client_cab ~dst_port ~txn cached
  | None ->
      if Hashtbl.mem server.in_flight key then
        (* a retransmission of a request still executing: at-most-once *)
        t.dups <- t.dups + 1
      else begin
        Hashtbl.replace server.in_flight key ();
        let response = server.handler ctx request in
        Hashtbl.remove server.in_flight key;
        t.served <- t.served + 1;
        cache_reply server ~client_cab ~txn response;
        send_response t ctx ~dst_cab:client_cab ~dst_port ~txn response
      end

(* Thread-mode requests are parked in [server_work] as
   [port u16 | txn u32 | client u16 | payload...] and served by a single
   system thread. *)
let server_thread_body t (ctx : Ctx.t) =
  while true do
    let m = Mailbox.begin_get ctx t.server_work in
    let dst_port = Message.get_u16 m 0 in
    let txn = Message.get_u32 m 2 in
    let client_cab = Message.get_u16 m 6 in
    Nectar_util.Copy_meter.record ~owner:t.owner Nectar_util.Copy_meter.App
      (Message.length m - 8);
    let request = Message.read_string m ~pos:8 ~len:(Message.length m - 8) in
    Mailbox.end_get ctx m;
    match Hashtbl.find_opt t.servers dst_port with
    | Some server -> run_handler t ctx server ~client_cab ~dst_port ~txn request
    | None -> ()
  done

let end_of_data t ctx (msg : Message.t) ~src_cab =
  ctx.Ctx.work Costs.reqresp_ns;
  if Message.length msg < header_bytes then Mailbox.dispose ctx msg
  else begin
    let ty = Message.get_u8 msg 0 in
    let dst_port = Message.get_u16 msg 2 in
    let txn = Message.get_u32 msg 4 in
    if ty = ty_response then begin
      (match Hashtbl.find_opt t.pending_calls txn with
      | Some p when p.response = None ->
          Nectar_util.Copy_meter.record ~owner:t.owner
            Nectar_util.Copy_meter.App
            (Message.length msg - header_bytes);
          p.response <-
            Some
              (Message.read_string msg ~pos:header_bytes
                 ~len:(Message.length msg - header_bytes));
          ignore (Waitq.broadcast p.resp_q)
      | Some _ | None -> () (* duplicate or stale response *));
      Mailbox.dispose ctx msg
    end
    else begin
      match Hashtbl.find_opt t.servers dst_port with
      | None -> Mailbox.dispose ctx msg
      | Some server -> (
          match server.mode with
          | Upcall_server ->
              Nectar_util.Copy_meter.record ~owner:t.owner
                Nectar_util.Copy_meter.App
                (Message.length msg - header_bytes);
              let request =
                Message.read_string msg ~pos:header_bytes
                  ~len:(Message.length msg - header_bytes)
              in
              Mailbox.dispose ctx msg;
              run_handler t ctx server ~client_cab:src_cab ~dst_port ~txn
                request
          | Thread_server -> (
              let n = Message.length msg - header_bytes in
              match Mailbox.try_begin_put ctx t.server_work (8 + n) with
              | None -> Mailbox.dispose ctx msg (* overload: drop *)
              | Some work ->
                  Message.set_u16 work 0 dst_port;
                  Message.set_u32 work 2 txn;
                  Message.set_u16 work 6 src_cab;
                  (* The hand-off to the server thread re-packages the
                     request into the work queue's format; the receive
                     buffer cannot be enqueued in place without changing
                     the mailbox charge sequence the Table 1 RPC row is
                     calibrated against, so this copy stays — metered, so
                     the accounting shows exactly what the thread-mode
                     server costs over the upcall path. *)
                  Nectar_util.Copy_meter.record ~owner:t.owner
                    Nectar_util.Copy_meter.Frag n;
                  Message.blit_from work ~dst_pos:8 ~src:msg.Message.mem
                    ~src_pos:(msg.Message.off + header_bytes) ~len:n;
                  Mailbox.dispose ctx msg;
                  Mailbox.end_put ctx t.server_work work))
    end
  end

let create dl ?(rto = Sim_time.ms 5) ?(max_retries = 8) () =
  let rt = Datalink.runtime dl in
  let input =
    Runtime.create_mailbox rt ~name:"reqresp-input" ~byte_limit:(128 * 1024)
      ~cached_buffer_bytes:0 ()
  in
  let server_work =
    Runtime.create_mailbox rt ~name:"reqresp-server-work"
      ~byte_limit:(64 * 1024) ~cached_buffer_bytes:128 ()
  in
  let t =
    {
      dl;
      rt;
      owner = Nectar_cab.Cab.name (Runtime.cab rt);
      input;
      rto;
      max_retries;
      next_txn = 1;
      pending_calls = Hashtbl.create 16;
      servers = Hashtbl.create 8;
      server_work;
      server_thread = None;
      completed = 0;
      served = 0;
      dups = 0;
    }
  in
  Datalink.register dl ~proto:Wire.proto_reqresp
    {
      Datalink.input_mailbox = input;
      proto_header_len = header_bytes;
      start_of_data = None;
      end_of_data = (fun ctx msg ~src_cab -> end_of_data t ctx msg ~src_cab);
    };
  t

let register_server t ~port ~mode handler =
  if Hashtbl.mem t.servers port then
    invalid_arg "Reqresp.register_server: port already served";
  Hashtbl.replace t.servers port
    {
      mode;
      handler;
      replies = Hashtbl.create 64;
      reply_order = Queue.create ();
      in_flight = Hashtbl.create 8;
    };
  if mode = Thread_server && t.server_thread = None then
    t.server_thread <-
      Some
        (Thread.create (Runtime.cab t.rt) ~priority:Thread.System
           ~name:"reqresp-server" (server_thread_body t))

let call (ctx : Ctx.t) t ~dst_cab ~dst_port request =
  Ctx.assert_may_block ctx "Reqresp.call";
  let trace_id = Nectar_sim.Trace.span_begin ~track:t.owner "rpc.call" in
  ctx.work Costs.reqresp_ns;
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  let p =
    {
      resp_q = Waitq.create (Runtime.engine t.rt) ~name:"reqresp-call" ();
      response = None;
    }
  in
  Hashtbl.replace t.pending_calls txn p;
  let msg =
    Datalink.alloc_frame_blocking ctx t.dl
      (header_bytes + String.length request)
  in
  Nectar_util.Copy_meter.record ~owner:t.owner Nectar_util.Copy_meter.App
    (String.length request);
  Message.write_string msg header_bytes request;
  write_header msg ~ty:ty_request ~dst_port ~txn;
  (* As in [Rmp.send], the request buffer must outlive every queued copy of
     the frame: the tx DMA snapshots the bytes only when the transmit queue
     drains down to the frame, so disposing at response time while a
     retransmission is still queued would put recycled memory on the wire. *)
  let queued = ref 0 and caller_done = ref false in
  let release ctx = if !caller_done && !queued = 0 then Mailbox.dispose ctx msg in
  let finish () =
    Hashtbl.remove t.pending_calls txn;
    caller_done := true;
    release ctx
  in
  let rec attempt tries =
    if tries > t.max_retries then begin
      finish ();
      Nectar_sim.Trace.span_end trace_id;
      raise (Call_timeout { dst_cab; dst_port })
    end;
    if tries > 0 then Nectar_sim.Trace.instant ~track:t.owner "rpc.retx";
    incr queued;
    (try
       Datalink.output ctx t.dl ~dst_cab ~proto:Wire.proto_reqresp ~msg
         ~on_done:(fun ctx _ ->
           decr queued;
           release ctx)
     with
    | Router.Route_down _ ->
        (* blackout window: treat like a lost request, retry after RTO *)
        decr queued
    | Router.No_route _ as e ->
        decr queued;
        finish ();
        Nectar_sim.Trace.span_end trace_id;
        raise e);
    let rec await () =
      match p.response with
      | Some r -> r
      | None -> (
          match Waitq.wait_timeout p.resp_q t.rto with
          | `Signaled -> await ()
          | `Timeout -> attempt (tries + 1))
    in
    await ()
  in
  let response = attempt 0 in
  finish ();
  t.completed <- t.completed + 1;
  Nectar_sim.Trace.span_end trace_id;
  response

let calls_completed t = t.completed
let requests_served t = t.served
let duplicate_requests t = t.dups

let register_metrics t reg ~prefix =
  let c name read = Nectar_util.Metrics.counter reg (prefix ^ name) read in
  c "rpc.calls_completed" (fun () -> calls_completed t);
  c "rpc.requests_served" (fun () -> requests_served t);
  c "rpc.duplicate_requests" (fun () -> duplicate_requests t)
