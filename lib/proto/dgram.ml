open Nectar_core
module Costs = Nectar_cab.Costs
module Router = Nectar_route.Router

let header_bytes = 8

type t = {
  dl : Datalink.t;
  rt : Runtime.t;
  input : Mailbox.t;
  mutable delivered_count : int;
  mutable no_port : int;
  mutable route_drops_count : int;
}

(* Header: dst_port u16 | src_port u16 | payload_len u16 | reserved u16 *)

let write_header (msg : Message.t) ~dst_port ~src_port =
  Message.set_u16 msg 0 dst_port;
  Message.set_u16 msg 2 src_port;
  Message.set_u16 msg 4 (Message.length msg - header_bytes);
  Message.set_u16 msg 6 0

(* All datagram input processing happens at interrupt level: parse, look up
   the destination mailbox, enqueue without copying. *)
let end_of_data t ctx (msg : Message.t) ~src_cab =
  ignore src_cab;
  Nectar_sim.Trace.instant
    ~track:(Nectar_cab.Cab.name (Runtime.cab t.rt))
    "dgram.deliver";
  ctx.Ctx.work Costs.dgram_ns;
  if Message.length msg < header_bytes then begin
    t.no_port <- t.no_port + 1;
    Mailbox.dispose ctx msg
  end
  else begin
    let dst_port = Message.get_u16 msg 0 in
    Message.adjust_head msg header_bytes;
    match Runtime.mailbox_at t.rt ~port:dst_port with
    | Some mbox ->
        t.delivered_count <- t.delivered_count + 1;
        Mailbox.enqueue ctx msg mbox
    | None ->
        t.no_port <- t.no_port + 1;
        Mailbox.dispose ctx msg
  end

let create dl =
  let rt = Datalink.runtime dl in
  let input =
    Runtime.create_mailbox rt ~name:"dgram-input" ~byte_limit:(128 * 1024)
      ~cached_buffer_bytes:0 ()
  in
  let t = { dl; rt; input; delivered_count = 0; no_port = 0; route_drops_count = 0 } in
  Datalink.register dl ~proto:Wire.proto_dgram
    {
      Datalink.input_mailbox = input;
      proto_header_len = header_bytes;
      start_of_data = None;
      end_of_data = (fun ctx msg ~src_cab -> end_of_data t ctx msg ~src_cab);
    };
  t

let alloc ctx t n =
  let msg = Datalink.alloc_frame_blocking ctx t.dl (header_bytes + n) in
  Message.adjust_head msg header_bytes;
  msg

let send (ctx : Ctx.t) t ~dst_cab ~dst_port ?(src_port = 0) msg =
  Nectar_sim.Trace.instant
    ~track:(Nectar_cab.Cab.name (Runtime.cab t.rt))
    "dgram.send";
  ctx.work Costs.dgram_ns;
  Message.push_head msg header_bytes;
  write_header msg ~dst_port ~src_port;
  try
    Datalink.output ctx t.dl ~dst_cab ~proto:Wire.proto_dgram ~msg
      ~on_done:Mailbox.dispose
  with Router.Route_down _ | Router.No_route _ ->
    (* unreliable datagram: a refused route is a local drop, counted —
       exactly what the wire would have done to it a window later *)
    t.route_drops_count <- t.route_drops_count + 1;
    Mailbox.dispose ctx msg

let send_string ctx t ~dst_cab ~dst_port s =
  let msg = alloc ctx t (String.length s) in
  Nectar_util.Copy_meter.record
    ~owner:(Nectar_cab.Cab.name (Runtime.cab t.rt))
    Nectar_util.Copy_meter.App (String.length s);
  Message.write_string msg 0 s;
  send ctx t ~dst_cab ~dst_port msg

let delivered t = t.delivered_count
let dropped_no_port t = t.no_port
let route_drops t = t.route_drops_count
