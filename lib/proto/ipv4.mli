(** IPv4 on the CAB (paper §4.1).

    Real 20-byte headers with a real one's-complement header checksum,
    fragmentation and reassembly, and the paper's processing structure:

    - All input processing runs at interrupt time.  The start-of-data
      upcall sanity-checks the header while the rest of the packet is still
      arriving; the end-of-data upcall queues fragments for reassembly and
      transfers complete datagrams to the registered higher protocol's
      input mailbox with the zero-copy [enqueue].
    - [output] takes a partially filled "header template" (the protocol
      field and addresses), completes the remaining fields (id, length,
      TTL, checksum) and hands the frame to the datalink layer, fragmenting
      when the datagram exceeds the MTU.

    Datagrams are enqueued to higher protocols *with the IP header still in
    front* so they can verify pseudo-header checksums; they strip it with
    [Message.adjust_head (header_bytes)].

    Addressing: the Nectar deployment maps CAB node ids into 10.1.0.0/16;
    routing is that inverse map (one LAN, no gateways — matching the
    paper's single-site network). *)

type addr = int

val header_bytes : int

val addr_of_cab : int -> addr
val cab_of_addr : addr -> int
val string_of_addr : addr -> string

val proto_icmp : int
val proto_tcp : int
val proto_udp : int

type t

val create : Datalink.t -> ?mtu:int -> ?ttl:int -> unit -> t
(** [mtu] (default 65535) is the IP datagram limit before fragmentation;
    set it low (e.g. 1500) to exercise the fragmentation path. *)

val datalink : t -> Datalink.t
val local_addr : t -> addr
val mtu : t -> int

val register : t -> proto:int -> Nectar_core.Mailbox.t -> unit
(** "Higher-level protocols are required to provide an input mailbox to IP;
    this mailbox constitutes the entire receive interface." *)

val alloc : Nectar_core.Ctx.t -> t -> int -> Nectar_core.Message.t
(** Allocate a transmit buffer for an [n]-byte transport segment, with
    datalink + IP headroom reserved. *)

val output :
  Nectar_core.Ctx.t ->
  t ->
  ?src:addr ->
  dst:addr ->
  proto:int ->
  Nectar_core.Message.t ->
  unit
(** Complete the header and send.  Consumes the message: its buffer is
    freed once transmitted (or immediately, for the copied fragments of an
    over-MTU datagram). *)

(** {1 Parsed header view (for transports and tests)} *)

type header = {
  total_len : int;
  id : int;
  more_fragments : bool;
  frag_off : int;  (** in bytes *)
  ttl : int;
  proto : int;
  src : addr;
  dst : addr;
}

val read_header : Nectar_core.Message.t -> header option
(** [None] when the header is malformed or its checksum is wrong. *)

val pseudo_checksum :
  Bytes.t -> pos:int -> len:int -> src:addr -> dst:addr -> proto:int -> int
(** RFC 1071 checksum of a transport segment plus the IPv4 pseudo-header
    (used by both UDP and TCP). *)

val datagrams_in : t -> int
val datagrams_out : t -> int
val fragments_out : t -> int
val reassembled : t -> int
val drops_header : t -> int
val drops_no_proto : t -> int
val drops_reassembly : t -> int

val route_drops : t -> int
(** Datagrams and fragments dropped locally on a typed route refusal
    ([Route_down]/[No_route]) — IP is best-effort, so these never raise;
    TCP's RTO recovers on its own clock. *)
