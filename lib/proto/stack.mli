(** Convenience assembly: the full protocol stack of paper §4 on one CAB —
    datalink, IP (with ICMP, UDP, TCP registered) and the three
    Nectar-specific transports. *)

type t = {
  rt : Nectar_core.Runtime.t;
  router : Nectar_route.Router.t;
  dl : Datalink.t;
  ip : Ipv4.t;
  icmp : Icmp.t;
  udp : Udp.t;
  tcp : Tcp.t;
  dgram : Dgram.t;
  rmp : Rmp.t;
  reqresp : Reqresp.t;
  mutable services : (string * (Nectar_util.Metrics.t -> unit)) list;
      (** registered stack services, newest first (use
          {!register_service}) *)
}

val create :
  Nectar_core.Runtime.t ->
  ?tcp_checksum:bool ->
  ?udp_checksum:bool ->
  ?mtu:int ->
  ?tcp_mss:int ->
  ?tcp_input_mode:[ `Thread | `Interrupt ] ->
  ?rpc_rto:Nectar_sim.Sim_time.span ->
  ?rpc_retries:int ->
  ?rmp_window:int ->
  ?rmp_ack_delay:Nectar_sim.Sim_time.span ->
  ?rmp_rto:Nectar_sim.Sim_time.span ->
  ?rmp_retries:int ->
  ?router:Nectar_route.Router.t ->
  ?route_policy:Nectar_route.Policy.t ->
  ?route_detection_ns:Nectar_sim.Sim_time.span ->
  ?route_recompute_ns:Nectar_sim.Sim_time.span ->
  unit ->
  t
(** [rmp_window]/[rmp_ack_delay] select the beyond-the-paper sliding-window
    RMP (see {!Rmp.create}); the defaults keep the paper's stop-and-wait.
    [rmp_rto]/[rmp_retries] tune its retry budget — wide fan-in (many
    senders converging on one CAB, e.g. the collective baselines) needs a
    patient RTO, or every sender's retransmissions amplify the incast.

    [router] shares an existing route database across stacks; otherwise a
    private one is built from [route_policy] (default: empty policy —
    plain shortest path, byte-identical to [Network.route]) with the
    given detection/recompute lags (see {!Nectar_route.Router.create}). *)

val node_id : t -> int
val addr : t -> Ipv4.addr

val register_service : t -> name:string -> (Nectar_util.Metrics.t -> unit) -> unit
(** Attach a named service layered above the stack (the collective engine
    of [lib/coll] is one): the thunk contributes the service's metrics to
    every later {!register_metrics} call, and a duplicate attachment of
    the same service name is refused — a service that binds a well-known
    mailbox port registers here so double-binding fails at attach time
    with a clear error rather than at mailbox creation.
    @raise Invalid_argument if [name] is already registered. *)

val has_service : t -> name:string -> bool

val register_metrics : t -> Nectar_util.Metrics.t -> unit
(** Register this node's datalink/RMP/rpc/TCP/Rx counters and CPU gauges
    into the registry, prefixed with the CAB's name, then each registered
    service's metrics (in attachment order). *)
