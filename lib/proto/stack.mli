(** Convenience assembly: the full protocol stack of paper §4 on one CAB —
    datalink, IP (with ICMP, UDP, TCP registered) and the three
    Nectar-specific transports. *)

type t = {
  rt : Nectar_core.Runtime.t;
  router : Nectar_route.Router.t;
  dl : Datalink.t;
  ip : Ipv4.t;
  icmp : Icmp.t;
  udp : Udp.t;
  tcp : Tcp.t;
  dgram : Dgram.t;
  rmp : Rmp.t;
  reqresp : Reqresp.t;
}

val create :
  Nectar_core.Runtime.t ->
  ?tcp_checksum:bool ->
  ?udp_checksum:bool ->
  ?mtu:int ->
  ?tcp_mss:int ->
  ?tcp_input_mode:[ `Thread | `Interrupt ] ->
  ?rpc_rto:Nectar_sim.Sim_time.span ->
  ?rpc_retries:int ->
  ?rmp_window:int ->
  ?rmp_ack_delay:Nectar_sim.Sim_time.span ->
  ?router:Nectar_route.Router.t ->
  ?route_policy:Nectar_route.Policy.t ->
  ?route_detection_ns:Nectar_sim.Sim_time.span ->
  ?route_recompute_ns:Nectar_sim.Sim_time.span ->
  unit ->
  t
(** [rmp_window]/[rmp_ack_delay] select the beyond-the-paper sliding-window
    RMP (see {!Rmp.create}); the defaults keep the paper's stop-and-wait.

    [router] shares an existing route database across stacks; otherwise a
    private one is built from [route_policy] (default: empty policy —
    plain shortest path, byte-identical to [Network.route]) with the
    given detection/recompute lags (see {!Nectar_route.Router.create}). *)

val node_id : t -> int
val addr : t -> Ipv4.addr

val register_metrics : t -> Nectar_util.Metrics.t -> unit
(** Register this node's datalink/RMP/rpc/TCP/Rx counters and CPU gauges
    into the registry, prefixed with the CAB's name. *)
