open Nectar_core
open Nectar_sim
open Nectar_util
module Costs = Nectar_cab.Costs

let header_bytes = 8
let ty_echo_reply = 0
let ty_unreachable = 3
let ty_echo_request = 8
let code_port_unreachable = 3

type pending_ping = { ping_q : Waitq.t; mutable replied : bool }

type t = {
  ip : Ipv4.t;
  rt : Runtime.t;
  owner : string;  (* CAB name, labels this node's copy-meter records *)
  input : Mailbox.t;
  pings : (int, pending_ping) Hashtbl.t; (* echo id *)
  mutable next_ping : int;
  mutable answered : int;
  mutable bad_cksum : int;
  mutable unreachable : int;
}

let icmp_checksum (msg : Message.t) ~pos ~len =
  Inet_checksum.checksum msg.Message.mem ~pos:(msg.Message.off + pos) ~len

(* The mailbox upcall: consume the datagram in place, inside the caller's
   (IP interrupt) context. *)
let upcall t ctx mbox =
  match Mailbox.try_begin_get ctx mbox with
  | None -> ()
  | Some msg -> (
      ctx.Ctx.work Costs.icmp_ns;
      match Ipv4.read_header msg with
      | None -> Mailbox.end_get ctx msg
      | Some h ->
          let ip_hdr = Ipv4.header_bytes in
          let icmp_len = Message.length msg - ip_hdr in
          if icmp_len < header_bytes then Mailbox.end_get ctx msg
          else if icmp_checksum msg ~pos:ip_hdr ~len:icmp_len <> 0 then begin
            t.bad_cksum <- t.bad_cksum + 1;
            Mailbox.end_get ctx msg
          end
          else begin
            let ty = Message.get_u8 msg ip_hdr in
            let ident = Message.get_u16 msg (ip_hdr + 4) in
            if ty = ty_echo_request then begin
              (* build the reply: same payload, type swapped; drop it when
                 the transmit pool is full (echo is best-effort) *)
              match Ipv4.alloc ctx t.ip icmp_len with
              | exception Datalink.No_buffer -> ()
              | reply ->
                  (* the reply edits type and checksum fields, so it cannot
                     alias the request buffer: a header-rebuild copy *)
                  Copy_meter.record ~owner:t.owner Copy_meter.Hdr icmp_len;
                  Message.blit_from reply ~dst_pos:0 ~src:msg.Message.mem
                    ~src_pos:(msg.Message.off + ip_hdr) ~len:icmp_len;
                  Message.set_u8 reply 0 ty_echo_reply;
                  Message.set_u16 reply 2 0;
                  let ck = icmp_checksum reply ~pos:0 ~len:icmp_len in
                  Message.set_u16 reply 2 ck;
                  t.answered <- t.answered + 1;
                  Ipv4.output ctx t.ip ~dst:h.Ipv4.src ~proto:Ipv4.proto_icmp
                    reply
            end
            else if ty = ty_echo_reply then begin
              match Hashtbl.find_opt t.pings ident with
              | Some p when not p.replied ->
                  p.replied <- true;
                  ignore (Waitq.broadcast p.ping_q)
              | Some _ | None -> ()
            end
            else if ty = ty_unreachable then
              t.unreachable <- t.unreachable + 1;
            Mailbox.end_get ctx msg
          end)

let create ip =
  let rt = Datalink.runtime (Ipv4.datalink ip) in
  let input =
    Runtime.create_mailbox rt ~name:"icmp-input" ~byte_limit:(32 * 1024)
      ~cached_buffer_bytes:0 ()
  in
  let t =
    {
      ip;
      rt;
      owner = Nectar_cab.Cab.name (Runtime.cab rt);
      input;
      pings = Hashtbl.create 8;
      next_ping = 1;
      answered = 0;
      bad_cksum = 0;
      unreachable = 0;
    }
  in
  Mailbox.set_upcall input (Some (upcall t));
  Ipv4.register ip ~proto:Ipv4.proto_icmp input;
  t

let ping (ctx : Ctx.t) t ~dst ?(payload_bytes = 32)
    ?(timeout = Sim_time.ms 100) () =
  Ctx.assert_may_block ctx "Icmp.ping";
  let ident = t.next_ping in
  t.next_ping <- ident + 1;
  let p =
    {
      ping_q = Waitq.create (Runtime.engine t.rt) ~name:"ping" ();
      replied = false;
    }
  in
  Hashtbl.replace t.pings ident p;
  let len = header_bytes + payload_bytes in
  let req = Ipv4.alloc ctx t.ip len in
  Message.set_u8 req 0 ty_echo_request;
  Message.set_u8 req 1 0;
  Message.set_u16 req 2 0;
  Message.set_u16 req 4 ident;
  Message.set_u16 req 6 1;
  for i = 0 to payload_bytes - 1 do
    Message.set_u8 req (header_bytes + i) (i land 0xff)
  done;
  let ck = icmp_checksum req ~pos:0 ~len in
  Message.set_u16 req 2 ck;
  let started = Engine.now (Runtime.engine t.rt) in
  Ipv4.output ctx t.ip ~dst ~proto:Ipv4.proto_icmp req;
  let rec await () =
    if p.replied then begin
      Hashtbl.remove t.pings ident;
      Some (Engine.now (Runtime.engine t.rt) - started)
    end
    else
      match Waitq.wait_timeout p.ping_q timeout with
      | `Signaled -> await ()
      | `Timeout ->
          Hashtbl.remove t.pings ident;
          None
  in
  await ()

(* RFC 792: type 3 carries the offending datagram's IP header plus its
   first 8 bytes. *)
let port_unreachable (ctx : Ctx.t) t ~orig =
  match Ipv4.read_header orig with
  | None -> ()
  | Some h -> (
      let quoted = min (Message.length orig) (Ipv4.header_bytes + 8) in
      let len = header_bytes + quoted in
      match Ipv4.alloc ctx t.ip len with
      | exception Datalink.No_buffer -> ()
      | msg ->
          Message.set_u8 msg 0 ty_unreachable;
          Message.set_u8 msg 1 code_port_unreachable;
          Message.set_u16 msg 2 0;
          Message.set_u32 msg 4 0;
          Copy_meter.record ~owner:t.owner Copy_meter.Hdr quoted;
          Message.blit_from msg ~dst_pos:header_bytes
            ~src:orig.Message.mem ~src_pos:orig.Message.off ~len:quoted;
          let ck = icmp_checksum msg ~pos:0 ~len in
          Message.set_u16 msg 2 ck;
          Ipv4.output ctx t.ip ~dst:h.Ipv4.src ~proto:Ipv4.proto_icmp msg)

let echoes_answered t = t.answered
let bad_checksums t = t.bad_cksum
let unreachables_received t = t.unreachable
