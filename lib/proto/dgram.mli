(** The Nectar-specific datagram protocol (paper §4): unreliable,
    connectionless delivery straight into a remote mailbox.

    This is the fastest Nectar path — one frame, no acknowledgements, all
    input processing at interrupt level — and the protocol behind the
    paper's headline 325 us host-to-host round trip (Table 1, Figure 6).

    Addressing is the network-wide mailbox address: (CAB node id, port).
    Delivery looks up the port in the destination CAB's runtime registry
    and enqueues the payload (headers stripped, zero copy) into that
    mailbox. *)

type t

val header_bytes : int

val create : Datalink.t -> t

val alloc : Nectar_core.Ctx.t -> t -> int -> Nectar_core.Message.t
(** Allocate a send buffer for an [n]-byte payload (headroom reserved);
    blocks until transmit-pool space is available. *)

val send :
  Nectar_core.Ctx.t ->
  t ->
  dst_cab:int ->
  dst_port:int ->
  ?src_port:int ->
  Nectar_core.Message.t ->
  unit
(** Fire-and-forget: queues the frame and returns; the buffer is freed by
    the transmit-done interrupt.  The message must have been allocated with
    [alloc] and its current data is the payload. *)

val send_string :
  Nectar_core.Ctx.t -> t -> dst_cab:int -> dst_port:int -> string -> unit

val delivered : t -> int
val dropped_no_port : t -> int

val route_drops : t -> int
(** Datagrams dropped locally on a typed route refusal: the unreliable
    transport absorbs [Route_down]/[No_route] as a counted local drop. *)
