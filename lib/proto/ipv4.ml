open Nectar_core
open Nectar_sim
open Nectar_util
module Costs = Nectar_cab.Costs
module Router = Nectar_route.Router

type addr = int

let header_bytes = 20

let addr_of_cab cab = 0x0a010000 lor (cab + 1)
let cab_of_addr addr = (addr land 0xffff) - 1

let string_of_addr a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xff) ((a lsr 16) land 0xff)
    ((a lsr 8) land 0xff) (a land 0xff)

let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

type header = {
  total_len : int;
  id : int;
  more_fragments : bool;
  frag_off : int;
  ttl : int;
  proto : int;
  src : addr;
  dst : addr;
}

(* A partially reassembled datagram: fragments are kept as the received
   messages (still owned by the IP input mailbox) until the hole list is
   empty. *)
type reass = {
  mutable frags : (int * Message.t) list; (* frag_off (bytes) -> fragment *)
  mutable total : int option; (* payload length, known once the last
                                 fragment arrives *)
  mutable received : int;
  born : Sim_time.t;
}

type t = {
  dl : Datalink.t;
  rt : Runtime.t;
  owner : string;  (* CAB name, labels this node's copy-meter records *)
  input : Mailbox.t;
  ip_mtu : int;
  default_ttl : int;
  addr : addr;
  bindings : (int, Mailbox.t) Hashtbl.t;
  reass_table : (int * int * int * int, reass) Hashtbl.t;
  reass_timeout : Sim_time.span;
  mutable next_id : int;
  mutable in_count : int;
  mutable out_count : int;
  mutable frag_out : int;
  mutable reass_count : int;
  mutable hdr_drops : int;
  mutable proto_drops : int;
  mutable reass_drops : int;
  mutable route_drops_count : int;
}

let datalink t = t.dl
let local_addr t = t.addr
let mtu t = t.ip_mtu

let register t ~proto mailbox =
  if Hashtbl.mem t.bindings proto then
    invalid_arg "Ipv4.register: protocol already registered";
  Hashtbl.replace t.bindings proto mailbox

(* ---------- header encode / decode ---------- *)

let encode_header mem ~pos ~total_len ~id ~more_fragments ~frag_off ~ttl
    ~proto ~src ~dst =
  Byte_view.set_u8 mem pos 0x45;
  Byte_view.set_u8 mem (pos + 1) 0;
  Byte_view.set_u16 mem (pos + 2) total_len;
  Byte_view.set_u16 mem (pos + 4) id;
  let flags = if more_fragments then 0x2000 else 0 in
  Byte_view.set_u16 mem (pos + 6) (flags lor (frag_off / 8));
  Byte_view.set_u8 mem (pos + 8) ttl;
  Byte_view.set_u8 mem (pos + 9) proto;
  Byte_view.set_u16 mem (pos + 10) 0;
  Byte_view.set_u32 mem (pos + 12) src;
  Byte_view.set_u32 mem (pos + 16) dst;
  let cksum = Inet_checksum.checksum mem ~pos ~len:header_bytes in
  Byte_view.set_u16 mem (pos + 10) cksum

let read_header (msg : Message.t) =
  if Message.length msg < header_bytes then None
  else
    let mem = msg.Message.mem and pos = msg.Message.off in
    let ver_ihl = Byte_view.get_u8 mem pos in
    if ver_ihl <> 0x45 then None
    else if not (Inet_checksum.valid mem ~pos ~len:header_bytes) then None
    else
      let frag_field = Byte_view.get_u16 mem (pos + 6) in
      Some
        {
          total_len = Byte_view.get_u16 mem (pos + 2);
          id = Byte_view.get_u16 mem (pos + 4);
          more_fragments = frag_field land 0x2000 <> 0;
          frag_off = (frag_field land 0x1fff) * 8;
          ttl = Byte_view.get_u8 mem (pos + 8);
          proto = Byte_view.get_u8 mem (pos + 9);
          src = Byte_view.get_u32 mem (pos + 12);
          dst = Byte_view.get_u32 mem (pos + 16);
        }

let pseudo_checksum mem ~pos ~len ~src ~dst ~proto =
  let acc = Inet_checksum.sum mem ~pos ~len in
  let acc = Inet_checksum.add16 acc (src lsr 16) in
  let acc = Inet_checksum.add16 acc (src land 0xffff) in
  let acc = Inet_checksum.add16 acc (dst lsr 16) in
  let acc = Inet_checksum.add16 acc (dst land 0xffff) in
  let acc = Inet_checksum.add16 acc proto in
  let acc = Inet_checksum.add16 acc len in
  Inet_checksum.finish acc

(* ---------- output ---------- *)

let alloc ctx t n =
  let msg =
    Datalink.alloc_frame_blocking ctx t.dl (header_bytes + n)
  in
  Message.adjust_head msg header_bytes;
  msg

let fresh_id t =
  let id = t.next_id in
  t.next_id <- (id + 1) land 0xffff;
  id

let send_datagram ctx t ~id ~more_fragments ~frag_off ~ttl ~proto ~src ~dst
    (msg : Message.t) =
  Message.push_head msg header_bytes;
  encode_header msg.Message.mem ~pos:msg.Message.off
    ~total_len:(Message.length msg) ~id ~more_fragments ~frag_off ~ttl ~proto
    ~src ~dst;
  t.out_count <- t.out_count + 1;
  try
    Datalink.output ctx t.dl ~dst_cab:(cab_of_addr dst) ~proto:Wire.proto_ip
      ~msg ~on_done:Mailbox.dispose
  with Router.Route_down _ | Router.No_route _ ->
    (* IP is best-effort: a refused route is a local drop, counted; the
       transports above (TCP RTO) recover on their own clock *)
    t.route_drops_count <- t.route_drops_count + 1;
    Mailbox.dispose ctx msg

let output (ctx : Ctx.t) t ?src ~dst ~proto msg =
  ctx.work Costs.ip_output_ns;
  let src = Option.value src ~default:t.addr in
  let ttl = t.default_ttl in
  let payload_len = Message.length msg in
  if header_bytes + payload_len <= t.ip_mtu then
    send_datagram ctx t ~id:(fresh_id t) ~more_fragments:false ~frag_off:0
      ~ttl ~proto ~src ~dst msg
  else begin
    (* Fragment, zero-copy: each fragment is a small header-only message
       plus a slice view of the original payload, sent as scatter/gather
       extents — the payload bytes are never copied on the transmit side.
       Each slice holds a buffer reference, so disposing [msg] below only
       drops the owner's reference; the buffer lives until the last
       fragment's frame dies. *)
    let id = fresh_id t in
    let max_payload = (t.ip_mtu - header_bytes) land lnot 7 in
    if max_payload <= 0 then invalid_arg "Ipv4.output: MTU too small";
    let rec slice off =
      if off < payload_len then begin
        ctx.work Costs.ip_frag_ns;
        let n = min max_payload (payload_len - off) in
        let last = off + n >= payload_len in
        let hdr = alloc ctx t 0 in
        let payload = Message.slice msg ~pos:off ~len:n in
        Message.push_head hdr header_bytes;
        encode_header hdr.Message.mem ~pos:hdr.Message.off
          ~total_len:(header_bytes + n) ~id ~more_fragments:(not last)
          ~frag_off:off ~ttl ~proto ~src ~dst;
        t.frag_out <- t.frag_out + 1;
        t.out_count <- t.out_count + 1;
        (try
           Datalink.output_sg ctx t.dl ~dst_cab:(cab_of_addr dst)
             ~proto:Wire.proto_ip ~msg:hdr ~tail:[ payload ]
             ~on_done:Mailbox.dispose
         with Router.Route_down _ | Router.No_route _ ->
           (* the refused fragment never became a frame: slice ownership
              only transfers on a successful send, so release both the
              header message and the payload slice here *)
           t.route_drops_count <- t.route_drops_count + 1;
           Mailbox.dispose ctx hdr;
           Message.Slice.release payload);
        slice (off + n)
      end
    in
    slice 0;
    Mailbox.dispose ctx msg
  end

(* ---------- input (all at interrupt level, paper §4.1) ---------- *)

let purge_stale t ctx now =
  let stale =
    Hashtbl.fold
      (fun key r acc -> if now - r.born > t.reass_timeout then key :: acc else acc)
      t.reass_table []
  in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.reass_table key with
      | Some r ->
          t.reass_drops <- t.reass_drops + 1;
          List.iter (fun (_, frag) -> Mailbox.dispose ctx frag) r.frags;
          Hashtbl.remove t.reass_table key
      | None -> ())
    stale

let deliver t ctx (msg : Message.t) ~proto =
  match Hashtbl.find_opt t.bindings proto with
  | Some mbox ->
      t.in_count <- t.in_count + 1;
      Mailbox.enqueue ctx msg mbox
  | None ->
      t.proto_drops <- t.proto_drops + 1;
      Mailbox.dispose ctx msg

let try_complete t ctx key (r : reass) ~proto =
  match r.total with
  | Some total when r.received >= total -> (
      (* Verify full coverage, then rebuild a contiguous datagram. *)
      let sorted = List.sort compare r.frags in
      let contiguous =
        List.fold_left
          (fun expect (off, frag) ->
            if off <> expect then -1
            else expect + Message.length frag - header_bytes)
          0 sorted
        = total
      in
      if not contiguous then ()
      else
        match Mailbox.try_begin_put ctx t.input (header_bytes + total) with
        | None ->
            t.reass_drops <- t.reass_drops + 1;
            List.iter (fun (_, frag) -> Mailbox.dispose ctx frag) r.frags;
            Hashtbl.remove t.reass_table key
        | Some whole ->
            ctx.Ctx.work Costs.ip_frag_ns;
            (match sorted with
            | (_, first) :: _ ->
                (* copy the first fragment's header, clearing fragmentation
                   fields and re-checksumming *)
                Copy_meter.record ~owner:t.owner Copy_meter.Hdr header_bytes;
                Message.blit_to first ~src_pos:0 ~dst:whole.Message.mem
                  ~dst_pos:whole.Message.off ~len:header_bytes;
                Byte_view.set_u16 whole.Message.mem (whole.Message.off + 2)
                  (header_bytes + total);
                Byte_view.set_u16 whole.Message.mem (whole.Message.off + 6) 0;
                Byte_view.set_u16 whole.Message.mem (whole.Message.off + 10) 0;
                let ck =
                  Inet_checksum.checksum whole.Message.mem
                    ~pos:whole.Message.off ~len:header_bytes
                in
                Byte_view.set_u16 whole.Message.mem (whole.Message.off + 10) ck
            | [] -> assert false);
            List.iter
              (fun (off, frag) ->
                let n = Message.length frag - header_bytes in
                (* reassembly is inherently a gather copy: the fragments
                   landed in separate receive buffers *)
                Copy_meter.record ~owner:t.owner Copy_meter.Frag n;
                Message.blit_to frag ~src_pos:header_bytes
                  ~dst:whole.Message.mem
                  ~dst_pos:(whole.Message.off + header_bytes + off)
                  ~len:n;
                Mailbox.dispose ctx frag)
              sorted;
            Hashtbl.remove t.reass_table key;
            t.reass_count <- t.reass_count + 1;
            deliver t ctx whole ~proto)
  | Some _ | None -> ()

let input_fragment t ctx (msg : Message.t) (h : header) =
  ctx.Ctx.work Costs.ip_frag_ns;
  purge_stale t ctx (Engine.now (Runtime.engine t.rt));
  let key = (h.src, h.dst, h.id, h.proto) in
  let r =
    match Hashtbl.find_opt t.reass_table key with
    | Some r -> r
    | None ->
        let r =
          {
            frags = [];
            total = None;
            received = 0;
            born = Engine.now (Runtime.engine t.rt);
          }
        in
        Hashtbl.replace t.reass_table key r;
        r
  in
  let payload = Message.length msg - header_bytes in
  if List.mem_assoc h.frag_off r.frags then Mailbox.dispose ctx msg
  else begin
    r.frags <- (h.frag_off, msg) :: r.frags;
    r.received <- r.received + payload;
    if not h.more_fragments then r.total <- Some (h.frag_off + payload);
    try_complete t ctx key r ~proto:h.proto
  end

let end_of_data t ctx (msg : Message.t) ~src_cab =
  ignore src_cab;
  ctx.Ctx.work Costs.ip_input_ns;
  match read_header msg with
  | None ->
      t.hdr_drops <- t.hdr_drops + 1;
      Mailbox.dispose ctx msg
  | Some h ->
      if h.total_len > Message.length msg then begin
        t.hdr_drops <- t.hdr_drops + 1;
        Mailbox.dispose ctx msg
      end
      else begin
        (* trim datalink padding, if any *)
        Message.adjust_tail msg (Message.length msg - h.total_len);
        if h.more_fragments || h.frag_off > 0 then input_fragment t ctx msg h
        else deliver t ctx msg ~proto:h.proto
      end

let create dl ?(mtu = 65535) ?(ttl = 32) () =
  let rt = Datalink.runtime dl in
  let input =
    Runtime.create_mailbox rt ~name:"ip-input" ~port:Wire.port_ip_input
      ~byte_limit:(256 * 1024) ~cached_buffer_bytes:0 ()
  in
  let t =
    {
      dl;
      rt;
      owner = Nectar_cab.Cab.name (Runtime.cab rt);
      input;
      ip_mtu = mtu;
      default_ttl = ttl;
      addr = addr_of_cab (Runtime.node_id rt);
      bindings = Hashtbl.create 8;
      reass_table = Hashtbl.create 8;
      reass_timeout = Sim_time.ms 500;
      next_id = 1;
      in_count = 0;
      out_count = 0;
      frag_out = 0;
      reass_count = 0;
      hdr_drops = 0;
      proto_drops = 0;
      reass_drops = 0;
      route_drops_count = 0;
    }
  in
  Datalink.register dl ~proto:Wire.proto_ip
    {
      Datalink.input_mailbox = input;
      proto_header_len = header_bytes;
      start_of_data =
        Some (fun ctx -> ctx.Ctx.work Costs.ip_hdr_check_ns);
      end_of_data = (fun ctx msg ~src_cab -> end_of_data t ctx msg ~src_cab);
    };
  t

let datagrams_in t = t.in_count
let datagrams_out t = t.out_count
let fragments_out t = t.frag_out
let reassembled t = t.reass_count
let drops_header t = t.hdr_drops
let drops_no_proto t = t.proto_drops
let drops_reassembly t = t.reass_drops
let route_drops t = t.route_drops_count
