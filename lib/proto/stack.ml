type t = {
  rt : Nectar_core.Runtime.t;
  router : Nectar_route.Router.t;
  dl : Datalink.t;
  ip : Ipv4.t;
  icmp : Icmp.t;
  udp : Udp.t;
  tcp : Tcp.t;
  dgram : Dgram.t;
  rmp : Rmp.t;
  reqresp : Reqresp.t;
  (* services layered above the stack (e.g. the collective engine in
     lib/coll, which this library cannot reference) register here so
     [register_metrics] folds their counters in with the core layers' and
     a port-owning service cannot be attached twice *)
  mutable services : (string * (Nectar_util.Metrics.t -> unit)) list;
}

let create rt ?(tcp_checksum = true) ?(udp_checksum = true) ?mtu ?tcp_mss
    ?tcp_input_mode ?rpc_rto ?rpc_retries ?rmp_window ?rmp_ack_delay ?rmp_rto
    ?rmp_retries ?router ?route_policy ?route_detection_ns ?route_recompute_ns
    () =
  let router =
    match router with
    | Some r -> r
    | None ->
        Nectar_route.Router.create ?policy:route_policy
          ?detection_ns:route_detection_ns ?recompute_ns:route_recompute_ns
          (Nectar_cab.Cab.network (Nectar_core.Runtime.cab rt))
  in
  let dl = Datalink.create ~router rt in
  let ip = Ipv4.create dl ?mtu () in
  let icmp = Icmp.create ip in
  let udp = Udp.create ip ~checksum:udp_checksum ~icmp () in
  let tcp =
    Tcp.create ip ~software_checksum:tcp_checksum ?mss:tcp_mss
      ?input_mode:tcp_input_mode ()
  in
  let dgram = Dgram.create dl in
  let rmp =
    Rmp.create dl ?window:rmp_window ?ack_delay:rmp_ack_delay ?rto:rmp_rto
      ?max_retries:rmp_retries ()
  in
  let reqresp = Reqresp.create dl ?rto:rpc_rto ?max_retries:rpc_retries () in
  { rt; router; dl; ip; icmp; udp; tcp; dgram; rmp; reqresp; services = [] }

let node_id t = Nectar_core.Runtime.node_id t.rt
let addr t = Ipv4.local_addr t.ip

let register_service t ~name metrics =
  if List.mem_assoc name t.services then
    invalid_arg
      (Printf.sprintf "Stack.register_service: %S already attached on %s" name
         (Nectar_cab.Cab.name (Nectar_core.Runtime.cab t.rt)));
  t.services <- (name, metrics) :: t.services

let has_service t ~name = List.mem_assoc name t.services

let register_metrics t reg =
  let cab = Nectar_core.Runtime.cab t.rt in
  let prefix = Nectar_cab.Cab.name cab ^ "." in
  Datalink.register_metrics t.dl reg ~prefix;
  Nectar_route.Router.register_metrics t.router reg ~prefix;
  Rmp.register_metrics t.rmp reg ~prefix;
  Reqresp.register_metrics t.reqresp reg ~prefix;
  Tcp.register_metrics t.tcp reg ~prefix;
  Nectar_cab.Rx.register_metrics (Nectar_cab.Cab.rx cab) reg ~prefix;
  (match Nectar_core.Runtime.msg_pool t.rt with
  | Some p ->
      let open Nectar_core.Message.Pool in
      Nectar_util.Metrics.counter reg (prefix ^ "msgpool.hits") (fun () ->
          hits p);
      Nectar_util.Metrics.counter reg (prefix ^ "msgpool.misses") (fun () ->
          misses p);
      Nectar_util.Metrics.counter reg (prefix ^ "msgpool.free") (fun () ->
          free_len p)
  | None -> ());
  let cpu = Nectar_cab.Cab.cpu cab in
  Nectar_util.Metrics.gauge reg (prefix ^ "cpu.busy_us") (fun () ->
      Nectar_sim.Sim_time.to_us (Nectar_sim.Cpu.busy_time cpu));
  Nectar_util.Metrics.counter reg (prefix ^ "cpu.switches") (fun () ->
      Nectar_sim.Cpu.switches cpu);
  List.iter
    (fun (oname, _) ->
      Nectar_util.Metrics.gauge reg
        (prefix ^ "cpu.owner." ^ oname ^ ".us")
        (fun () ->
          (* re-read the report so the gauge tracks the live served time *)
          match List.assoc_opt oname (Nectar_sim.Cpu.owners_report cpu) with
          | Some served -> Nectar_sim.Sim_time.to_us served
          | None -> 0.))
    (Nectar_sim.Cpu.owners_report cpu);
  List.iter (fun (_, f) -> f reg) (List.rev t.services)
