type t = {
  rt : Nectar_core.Runtime.t;
  dl : Datalink.t;
  ip : Ipv4.t;
  icmp : Icmp.t;
  udp : Udp.t;
  tcp : Tcp.t;
  dgram : Dgram.t;
  rmp : Rmp.t;
  reqresp : Reqresp.t;
}

let create rt ?(tcp_checksum = true) ?(udp_checksum = true) ?mtu ?tcp_mss
    ?tcp_input_mode ?rpc_rto ?rpc_retries ?rmp_window ?rmp_ack_delay () =
  let dl = Datalink.create rt in
  let ip = Ipv4.create dl ?mtu () in
  let icmp = Icmp.create ip in
  let udp = Udp.create ip ~checksum:udp_checksum ~icmp () in
  let tcp =
    Tcp.create ip ~software_checksum:tcp_checksum ?mss:tcp_mss
      ?input_mode:tcp_input_mode ()
  in
  let dgram = Dgram.create dl in
  let rmp = Rmp.create dl ?window:rmp_window ?ack_delay:rmp_ack_delay () in
  let reqresp = Reqresp.create dl ?rto:rpc_rto ?max_retries:rpc_retries () in
  { rt; dl; ip; icmp; udp; tcp; dgram; rmp; reqresp }

let node_id t = Nectar_core.Runtime.node_id t.rt
let addr t = Ipv4.local_addr t.ip
