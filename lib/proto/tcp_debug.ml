let enabled = ref false
let printf fmt = Printf.printf fmt
