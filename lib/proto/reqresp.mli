(** The Nectar-specific request-response protocol (paper §4): "the
    transport mechanism for client-server RPC calls".

    A client transaction sends a request frame and blocks for the matching
    response, retransmitting on timeout; servers are registered per port
    and may run either as a dedicated system thread or as a mailbox
    *upcall* in the interrupt context — the two server structures whose
    trade-off §3.3 discusses (measured in the ablation bench).

    At-most-once execution: the server caches the last response per
    (client, transaction) and replays it for duplicate requests. *)

type t

val header_bytes : int

exception Call_timeout of { dst_cab : int; dst_port : int }

val create :
  Datalink.t -> ?rto:Nectar_sim.Sim_time.span -> ?max_retries:int -> unit -> t

val call :
  Nectar_core.Ctx.t ->
  t ->
  dst_cab:int ->
  dst_port:int ->
  string ->
  string
(** Blocking remote call: send the request payload, return the response
    payload.  Raises {!Call_timeout} after the retry budget. *)

type server_mode = Thread_server | Upcall_server

val register_server :
  t ->
  port:int ->
  mode:server_mode ->
  (Nectar_core.Ctx.t -> string -> string) ->
  unit
(** Serve [port]: the handler maps request payloads to response payloads.
    [Thread_server] runs it in a dedicated system thread (a context switch
    per call); [Upcall_server] runs it inside the request's interrupt-level
    upcall (the §3.3 "local procedure call" optimisation — the handler must
    not block). *)

val calls_completed : t -> int
val requests_served : t -> int
val duplicate_requests : t -> int

val register_metrics : t -> Nectar_util.Metrics.t -> prefix:string -> unit
(** Register the call/serve/duplicate counters as [<prefix>rpc.*]. *)
