(** The CAB datalink layer (paper §4.1).

    Receive: the start-of-packet interrupt handler reads the datalink
    header, finds the protocol binding, allocates space in the protocol's
    input mailbox (non-blocking: no space means the frame is dropped, like
    any link layer), and programs receive DMA.  The binding's
    [start_of_data] upcall fires once the protocol header has arrived —
    "so that useful work can be done while the remainder of the packet is
    being received" — and [end_of_data] fires, at interrupt level, with the
    complete message (datalink header stripped, state [Writing]): the
    protocol decides whether to [end_put] it, [enqueue] it elsewhere, or
    drop it.  Frames failing the hardware CRC are freed and counted.

    Transmit: [output] prepends the datalink header into the message's
    reserved headroom and hands the frame to the CAB transmit DMA; the
    caller's [on_done] runs at interrupt level when the buffer is free
    (the paper's "free the data area once sent" flag is [on_done =
    dispose]). *)

type t

type binding = {
  input_mailbox : Nectar_core.Mailbox.t;
  proto_header_len : int;
  start_of_data : (Nectar_core.Ctx.t -> unit) option;
  end_of_data :
    Nectar_core.Ctx.t -> Nectar_core.Message.t -> src_cab:int -> unit;
}

val create : ?router:Nectar_route.Router.t -> Nectar_core.Runtime.t -> t
(** [router] is the live route database every transmit consults (shared
    across CABs when passed explicitly, e.g. by [Stack.create]); by
    default a private router with the empty policy is built, which
    compiles exactly [Network.route]'s shortest paths. *)

val runtime : t -> Nectar_core.Runtime.t

val router : t -> Nectar_route.Router.t

val register : t -> proto:int -> binding -> unit

val alloc_frame :
  Nectar_core.Ctx.t -> t -> int -> Nectar_core.Message.t option
(** Allocate a transmit buffer with datalink headroom already reserved: the
    returned message (if the transmit pool has space) has length [n] and its
    data start positioned at the transport layer's first header byte. *)

exception No_buffer

val alloc_frame_blocking : Nectar_core.Ctx.t -> t -> int -> Nectar_core.Message.t
(** Like {!alloc_frame} but blocks until transmit-pool space is available.
    From a non-blocking context (interrupt level) it cannot wait: it raises
    {!No_buffer} when the pool is momentarily full, which callers treat as a
    droppable-frame condition (retransmission recovers). *)

val output :
  Nectar_core.Ctx.t ->
  t ->
  dst_cab:int ->
  proto:int ->
  msg:Nectar_core.Message.t ->
  on_done:(Nectar_core.Ctx.t -> Nectar_core.Message.t -> unit) ->
  unit
(** Send a message (allocated with headroom, e.g. by [alloc_frame]) to a
    remote CAB.  Zero-copy: the frame references the message's buffer in
    place (a reference pins the buffer until the frame's life ends — the
    receiver drains it or the wire swallows it), so [on_done] signals
    transmit-descriptor completion, not that the bytes are unreferenced.
    Loopback to the local CAB is not supported: Nectar CABs talk to
    themselves through local mailboxes, never the fabric.

    Raises [Router.Route_down] when the route database currently has no
    live path for the flow, and [Router.No_route] when the pair is
    statically partitioned — both *before* touching the message, so the
    caller's view and refcounts are unchanged and the same buffer can be
    re-sent after reconvergence.  Reliable transports absorb [Route_down]
    into their retransmission machinery. *)

val output_sg :
  Nectar_core.Ctx.t ->
  t ->
  dst_cab:int ->
  proto:int ->
  msg:Nectar_core.Message.t ->
  tail:Nectar_core.Message.Slice.t list ->
  on_done:(Nectar_core.Ctx.t -> Nectar_core.Message.t -> unit) ->
  unit
(** Like {!output} but the wire payload is [msg] (headers) followed by the
    [tail] slices, as scatter/gather extents — IP fragmentation sends a
    small header message plus a slice of the original payload without
    copying it.  Ownership of the [tail] slices transfers to the frame:
    they are released when the frame's life ends, so pass fresh slices per
    transmission. *)

val drops_no_buffer : t -> int
val drops_bad_proto : t -> int

val drops_bad_len : t -> int
(** Frames whose datalink header claimed a payload length different from
    the physical frame length.  Receive buffers are sized from the header
    claim, so trusting it would let a malformed frame overrun its buffer;
    such frames are dropped whole. *)

val drops_crc : t -> int

val drops_route_down : t -> int
(** Sends refused with a typed [Route_down] — the database knew the path
    was dead, so the frame never reached the wire (distinct from the
    fabric's [link_down_drops], which blackhole *on* the wire). *)

val drops_no_route : t -> int
(** Sends refused with a typed [No_route] (statically partitioned pair). *)

val frames_in : t -> int
val frames_out : t -> int

val register_metrics : t -> Nectar_util.Metrics.t -> prefix:string -> unit
(** Register the frame/drop counters as [<prefix>dl.*]. *)
