open Nectar_core
module Costs = Nectar_cab.Costs

let header_bytes = 8

type t = {
  ip : Ipv4.t;
  rt : Runtime.t;
  input : Mailbox.t;
  icmp : Icmp.t option;
  use_checksum : bool;
  ports : (int, Mailbox.t) Hashtbl.t;
  mutable delivered_count : int;
  mutable no_port : int;
  mutable bad_cksum : int;
}

let segment_checksum = Ipv4.pseudo_checksum

let server_body t (ctx : Ctx.t) =
  while true do
    let msg = Mailbox.begin_get ctx t.input in
    ctx.work Costs.udp_input_ns;
    (match Ipv4.read_header msg with
    | None -> Mailbox.end_get ctx msg
    | Some h ->
        let ip_hdr = Ipv4.header_bytes in
        let seg_len = Message.length msg - ip_hdr in
        if seg_len < header_bytes then Mailbox.end_get ctx msg
        else begin
          let checksum_ok =
            if not t.use_checksum then true
            else begin
              ctx.work (seg_len * Costs.tcp_cksum_ns_per_byte);
              let stored = Message.get_u16 msg (ip_hdr + 6) in
              stored = 0
              || segment_checksum msg.Message.mem
                   ~pos:(msg.Message.off + ip_hdr) ~len:seg_len ~src:h.Ipv4.src
                   ~dst:h.Ipv4.dst ~proto:Ipv4.proto_udp
                 = 0
            end
          in
          if not checksum_ok then begin
            t.bad_cksum <- t.bad_cksum + 1;
            Mailbox.end_get ctx msg
          end
          else begin
            let dst_port = Message.get_u16 msg (ip_hdr + 2) in
            let udp_len = Message.get_u16 msg (ip_hdr + 4) in
            match Hashtbl.find_opt t.ports dst_port with
            | Some mbox when udp_len >= header_bytes && udp_len <= seg_len ->
                Message.adjust_tail msg (seg_len - udp_len);
                Message.adjust_head msg (ip_hdr + header_bytes);
                t.delivered_count <- t.delivered_count + 1;
                Mailbox.enqueue ctx msg mbox
            | Some _ | None ->
                t.no_port <- t.no_port + 1;
                (match t.icmp with
                | Some icmp -> Icmp.port_unreachable ctx icmp ~orig:msg
                | None -> ());
                Mailbox.end_get ctx msg
          end
        end);
    ()
  done

let create ip ?(checksum = true) ?icmp () =
  let rt = Datalink.runtime (Ipv4.datalink ip) in
  let input =
    Runtime.create_mailbox rt ~name:"udp-input" ~port:Wire.port_udp_input
      ~byte_limit:(128 * 1024) ~cached_buffer_bytes:0 ()
  in
  let t =
    {
      ip;
      rt;
      input;
      icmp;
      use_checksum = checksum;
      ports = Hashtbl.create 16;
      delivered_count = 0;
      no_port = 0;
      bad_cksum = 0;
    }
  in
  Ipv4.register ip ~proto:Ipv4.proto_udp input;
  ignore
    (Thread.create (Runtime.cab rt) ~priority:Thread.System ~name:"udp-input"
       (server_body t));
  t

let bind t ~port mbox =
  if Hashtbl.mem t.ports port then invalid_arg "Udp.bind: port in use";
  Hashtbl.replace t.ports port mbox

let unbind t ~port = Hashtbl.remove t.ports port

let alloc ctx t n =
  let msg = Ipv4.alloc ctx t.ip (header_bytes + n) in
  Message.adjust_head msg header_bytes;
  msg

let send (ctx : Ctx.t) t ~src_port ~dst ~dst_port msg =
  ctx.work Costs.udp_output_ns;
  let udp_len = header_bytes + Message.length msg in
  Message.push_head msg header_bytes;
  Message.set_u16 msg 0 src_port;
  Message.set_u16 msg 2 dst_port;
  Message.set_u16 msg 4 udp_len;
  Message.set_u16 msg 6 0;
  if t.use_checksum then begin
    ctx.work (udp_len * Costs.tcp_cksum_ns_per_byte);
    let ck =
      segment_checksum msg.Message.mem ~pos:msg.Message.off ~len:udp_len
        ~src:(Ipv4.local_addr t.ip) ~dst ~proto:Ipv4.proto_udp
    in
    Message.set_u16 msg 6 (if ck = 0 then 0xffff else ck)
  end;
  Ipv4.output ctx t.ip ~dst ~proto:Ipv4.proto_udp msg

let send_string ctx t ~src_port ~dst ~dst_port s =
  let msg = alloc ctx t (String.length s) in
  Nectar_util.Copy_meter.record
    ~owner:(Nectar_cab.Cab.name (Runtime.cab t.rt))
    Nectar_util.Copy_meter.App (String.length s);
  Message.write_string msg 0 s;
  send ctx t ~src_port ~dst ~dst_port msg

let datagrams_delivered t = t.delivered_count
let drops_no_port t = t.no_port
let drops_checksum t = t.bad_cksum
