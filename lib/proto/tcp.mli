(** TCP on the CAB (paper §4.2).

    Structure follows the paper: TCP runs "almost entirely in system
    threads, rather than at interrupt time", protecting shared state with
    mutual-exclusion locks.  The *input thread* blocks on the TCP input
    mailbox, checksums the segment, runs the state machine and passes data
    to the user's receive mailbox with the zero-copy [enqueue]; the *send
    thread* services the send-request mailbox (how hosts hand data to TCP);
    CAB-resident senders call {!send} directly "without involving the TCP
    send thread".

    The protocol itself is era-appropriate (pre-congestion-avoidance):
    3-way handshake, cumulative ACKs, sliding window bounded by the peer's
    advertised window, retransmission on an adaptive RTO (SRTT + 4*RTTVAR,
    exponential backoff), orderly FIN teardown with TIME_WAIT, RST on
    unknown connections.  Out-of-order segments are dropped (the fabric
    delivers in order; loss comes only from fault injection and buffer
    exhaustion) and there is no SACK or delayed ACK.

    The software checksum — a real one's-complement sum over the segment
    plus pseudo-header, charged per byte on the CAB CPU — can be disabled
    per instance, reproducing Figure 7's "TCP w/o checksum" curve.

    For experimentation (the paper §3.1 plan to compare interrupt-time
    against thread-based input processing), [input_mode] selects where
    input processing runs: [`Thread] (the paper's implementation) or
    [`Interrupt] (processing in IP's end-of-data upcall context). *)

type t

type conn

exception Connection_refused
exception Connection_timed_out
exception Connection_reset

val create :
  Ipv4.t ->
  ?software_checksum:bool ->
  ?mss:int ->
  ?window:int ->
  ?input_mode:[ `Thread | `Interrupt ] ->
  unit ->
  t

val listen : t -> port:int -> on_accept:(conn -> unit) -> unit
(** Accept connections on [port]; [on_accept] runs in the input-processing
    context when a connection reaches Established. *)

val connect :
  Nectar_core.Ctx.t -> t -> dst:Ipv4.addr -> dst_port:int -> ?src_port:int ->
  unit -> conn
(** Active open; blocks until Established.  Raises {!Connection_refused} on
    RST, {!Connection_timed_out} after SYN retries. *)

val send : Nectar_core.Ctx.t -> conn -> string -> unit
(** Queue bytes on the connection; blocks while the send buffer is full.
    Raises {!Connection_reset} if the peer tore the connection down, or
    {!Connection_timed_out} if our own retransmission budget expired (the
    timer retried with exponential backoff capped at 2 s until the budget
    ran out with no ACK progress, then aborted the connection). *)

val failure : conn -> [ `None | `Reset | `Timed_out ]
(** How the connection died, if it did: [`Reset] by the peer,
    [`Timed_out] by the local retransmission budget. *)

val recv_mailbox : conn -> Nectar_core.Mailbox.t
(** In-order received data lands here as messages (payload only). *)

val recv_string : Nectar_core.Ctx.t -> conn -> string
(** Take the next data message (blocking). *)

val close : Nectar_core.Ctx.t -> conn -> unit
(** Send FIN after pending data; returns once the FIN is acknowledged. *)

val state_name : conn -> string
val local_port : conn -> int
val remote : conn -> Ipv4.addr * int

(** {1 Stats (for the benches)} *)

val segments_in : t -> int
val segments_out : t -> int
val retransmissions : t -> int
val bad_checksums : t -> int
val send_request_mailbox : t -> Nectar_core.Mailbox.t
val conn_by_id : t -> int -> conn option
val conn_id : conn -> int

val debug : bool ref
(** Temporary tracing for bench calibration. *)

val register_metrics : t -> Nectar_util.Metrics.t -> prefix:string -> unit
(** Register segment/retransmission counters as [<prefix>tcp.*]. *)
