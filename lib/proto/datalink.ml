open Nectar_core
open Nectar_cab
module Router = Nectar_route.Router

type binding = {
  input_mailbox : Mailbox.t;
  proto_header_len : int;
  start_of_data : (Ctx.t -> unit) option;
  end_of_data : Ctx.t -> Message.t -> src_cab:int -> unit;
}

type t = {
  rt : Runtime.t;
  cab : Cab.t;
  bindings : binding option array;
      (* indexed by protocol number; the proto field is a u8 on the wire,
         so 256 slots cover every decodable value and the per-frame demux
         is a single array load instead of a hash probe *)
  tx_pool : Mailbox.t;
  router : Router.t;
  mutable no_buffer : int;
  mutable bad_proto : int;
  mutable bad_len : int;
  mutable crc_drops : int;
  mutable route_down_count : int;
  mutable no_route_count : int;
  mutable frames_in_count : int;
  mutable frames_out_count : int;
}

(* Start-of-packet interrupt handler: read and parse the datalink header,
   allocate buffer space in the protocol's input mailbox, program DMA. *)
let rx_frame t ictx pending =
  let ctx = Ctx.of_interrupt ictx in
  Nectar_sim.Trace.instant ~track:(Cab.name t.cab) "dl.rx";
  ctx.work Costs.dl_rx_header_ns;
  t.frames_in_count <- t.frames_in_count + 1;
  let rx = Cab.rx t.cab in
  let hdr_bytes, hdr_pos = Rx.read_view rx pending Wire.dl_header_bytes in
  let hdr = Wire.decode_dl hdr_bytes ~pos:hdr_pos in
  if hdr.Wire.payload_len <> Rx.total pending - Wire.dl_header_bytes then begin
    (* Never size a receive buffer from the wire's claim alone: the DMA
       drains the whole physical frame, so a header whose length field
       disagrees with the frame would overrun the buffer.  Such frames are
       malformed (e.g. a transmitter snapshotting a recycled buffer) and
       are dropped whole, like a CRC failure. *)
    t.bad_len <- t.bad_len + 1;
    Rx.discard rx pending
  end
  else
    match Array.unsafe_get t.bindings hdr.Wire.proto with
    (* safe: proto is a u8 and the array has 256 slots *)
    | None ->
        t.bad_proto <- t.bad_proto + 1;
        Rx.discard rx pending
    | Some b -> (
      match Mailbox.try_begin_put ctx b.input_mailbox hdr.Wire.payload_len with
      | None ->
          t.no_buffer <- t.no_buffer + 1;
          Rx.discard rx pending
      | Some msg ->
          let watch =
            match b.start_of_data with
            | None -> []
            | Some f ->
                let proto_hdr =
                  min b.proto_header_len hdr.Wire.payload_len
                in
                [
                  ( Wire.dl_header_bytes + proto_hdr,
                    fun ictx -> f (Ctx.of_interrupt ictx) );
                ]
          in
          Rx.dma_to_memory rx pending ~dst:msg.Message.mem
            ~dst_pos:msg.Message.off ~watch
            ~on_complete:(fun ictx ~crc_ok ->
              let ctx = Ctx.of_interrupt ictx in
              if crc_ok then b.end_of_data ctx msg ~src_cab:hdr.Wire.src_cab
              else begin
                t.crc_drops <- t.crc_drops + 1;
                Mailbox.abort_put ctx b.input_mailbox msg
              end)
            ())

let create ?router rt =
  let cab = Runtime.cab rt in
  let router =
    match router with
    | Some r -> r
    | None -> Router.create (Cab.network cab)
  in
  let tx_pool =
    Runtime.create_mailbox rt
      ~name:(Cab.name cab ^ ".dl-tx-pool")
      ~byte_limit:(256 * 1024) ~cached_buffer_bytes:0 ()
  in
  let t =
    {
      rt;
      cab;
      bindings = Array.make 256 None;
      tx_pool;
      router;
      no_buffer = 0;
      bad_proto = 0;
      bad_len = 0;
      crc_drops = 0;
      route_down_count = 0;
      no_route_count = 0;
      frames_in_count = 0;
      frames_out_count = 0;
    }
  in
  Rx.set_frame_handler (Cab.rx cab) (rx_frame t);
  t

let runtime t = t.rt
let router t = t.router

let register t ~proto binding =
  if proto < 0 || proto > 255 then
    invalid_arg "Datalink.register: protocol number must fit in a u8";
  if Option.is_some t.bindings.(proto) then
    invalid_arg "Datalink.register: protocol already bound";
  t.bindings.(proto) <- Some binding

(* Consult the live route database for this flow.  Typed refusals are
   counted here (per CAB) as well as in the router (per database): a
   refused send never reaches the wire, so conservation accounting treats
   it like a local drop absorbed by retransmission. *)
let route_to t ~dst_cab ~proto =
  try Router.lookup t.router ~src:(Cab.node_id t.cab) ~dst:dst_cab ~proto
  with
  | Router.Route_down _ as e ->
      t.route_down_count <- t.route_down_count + 1;
      raise e
  | Router.No_route _ as e ->
      t.no_route_count <- t.no_route_count + 1;
      raise e

let alloc_frame ctx t n =
  (* headroom reserved at allocation: [output] prepends the datalink header
     into the same buffer with [Message.push_head] — never a fresh message *)
  Mailbox.try_begin_put ctx t.tx_pool ~headroom:Wire.dl_header_bytes n

exception No_buffer

let alloc_frame_blocking (ctx : Ctx.t) t n =
  if ctx.may_block then
    Mailbox.begin_put ctx t.tx_pool ~headroom:Wire.dl_header_bytes n
  else match alloc_frame ctx t n with Some msg -> msg | None -> raise No_buffer

let output_sg (ctx : Ctx.t) t ~dst_cab ~proto ~msg ~tail ~on_done =
  if dst_cab = Cab.node_id t.cab then
    invalid_arg
      (Printf.sprintf "Datalink.output: loopback not supported (%s, dst %d)"
         (Cab.name t.cab) dst_cab);
  (* Route lookup comes first, before any mutation of [msg]: a typed
     [Route_down]/[No_route] refusal must leave the caller's message view
     and refcounts exactly as they were, so retransmission machinery can
     re-send the same buffer once the routes reconverge. *)
  let route = route_to t ~dst_cab ~proto in
  let tid = Nectar_sim.Trace.span_begin ~track:(Cab.name t.cab) "dl.tx" in
  ctx.work Costs.dl_tx_setup_ns;
  let tail_len =
    List.fold_left (fun acc s -> acc + Message.Slice.length s) 0 tail
  in
  let payload_len = Message.length msg + tail_len in
  Message.push_head msg Wire.dl_header_bytes;
  let header =
    {
      Wire.proto;
      flags = 0;
      payload_len;
      src_cab = Cab.node_id t.cab;
      dst_cab;
    }
  in
  Wire.encode_dl msg.Message.mem ~pos:msg.Message.off header;
  t.frames_out_count <- t.frames_out_count + 1;
  (* Zero-copy transmit: the frame's extents point straight into the
     message's buffer (headers and payload in place, paper §5.2) plus any
     payload slices carved out of other messages.  The head buffer is
     pinned with a reference for the frame's lifetime — [on_done] only
     means the transmit descriptor completed; the physical bytes stay until
     the frame dies at the receiver (or on a faulted wire). *)
  Message.retain msg;
  let extents =
    (msg.Message.mem, msg.Message.off, Message.length msg)
    :: List.map Message.Slice.extent tail
  in
  Cab.send_frame t.cab ~route ~header_bytes:Wire.dl_header_bytes
    ~release:(fun () ->
      Message.release msg;
      List.iter Message.Slice.release tail)
    ~extents
    ~on_done:(fun ictx -> on_done (Ctx.of_interrupt ictx) msg) ();
  (* Restore the caller's view of the message (transport header + payload):
     the frame extent was captured above, and reliable protocols re-send the
     same message on retransmission. *)
  Message.adjust_head msg Wire.dl_header_bytes;
  Nectar_sim.Trace.span_end tid

let output (ctx : Ctx.t) t ~dst_cab ~proto ~msg ~on_done =
  output_sg ctx t ~dst_cab ~proto ~msg ~tail:[] ~on_done

let drops_no_buffer t = t.no_buffer
let drops_bad_proto t = t.bad_proto
let drops_bad_len t = t.bad_len
let drops_crc t = t.crc_drops
let drops_route_down t = t.route_down_count
let drops_no_route t = t.no_route_count
let frames_in t = t.frames_in_count
let frames_out t = t.frames_out_count

let register_metrics t reg ~prefix =
  let c name read = Nectar_util.Metrics.counter reg (prefix ^ name) read in
  c "dl.frames_in" (fun () -> frames_in t);
  c "dl.frames_out" (fun () -> frames_out t);
  c "dl.drops_bad_len" (fun () -> drops_bad_len t);
  c "dl.drops_bad_proto" (fun () -> drops_bad_proto t);
  c "dl.drops_no_buffer" (fun () -> drops_no_buffer t);
  c "dl.drops_crc" (fun () -> drops_crc t);
  c "dl.drops_route_down" (fun () -> drops_route_down t);
  c "dl.drops_no_route" (fun () -> drops_no_route t)
