(** A unified metrics registry.

    The repo grew one-off counters in every layer — [Copy_meter] sites,
    datalink [drops_bad_len], mailbox [overflow_drops], RMP
    [failed_sends], Rx [completion_batches], CPU [owners_report] — each
    with its own accessor.  [Metrics] puts them behind one
    {!snapshot}/{!dump} API so benches, chaos campaigns, and the CLI
    report from a single source of truth.

    Counters and gauges are registered as thunks reading the component's
    existing state (no double bookkeeping, always current); histograms
    are owned by the registry and fed with {!observe}. *)

type t

type value =
  | Count of int  (** monotonic event count *)
  | Gauge of float  (** instantaneous level *)
  | Hist of { n : int; mean : float; stddev : float; min : float; max : float }

val create : unit -> t

val counter : t -> string -> (unit -> int) -> unit
(** Register a monotonic counter read via the thunk.
    @raise Invalid_argument if the name is already registered. *)

val gauge : t -> string -> (unit -> float) -> unit

val histogram : t -> string -> unit
(** Register an owned histogram; feed it with {!observe}. *)

val observe : t -> string -> float -> unit
(** @raise Invalid_argument if the name is not a registered histogram. *)

val merge : t -> t -> unit
(** [merge t src] folds [src]'s owned histograms into [t]: same-named
    histograms combine with the parallel Welford rule (exact n/mean/m2
    and min/max, stable at large offsets), names absent from [t] are
    created.  Merging an empty histogram into a populated one (or vice
    versa) preserves the populated side's moments and extrema.
    Thunk-backed counters and gauges read live owner state and are
    skipped.
    @raise Invalid_argument if a histogram name is registered in [t] as a
    counter or gauge. *)

val snapshot : t -> (string * value) list
(** All metrics, sorted by name; thunks are read at call time. *)

val dump : ?out:out_channel -> t -> unit
(** Print the snapshot as aligned [name value] lines (stdout default). *)
