(** Packed single-int hash-table keys for hot-path demultiplexing tables.

    A tuple key ([int * int]) costs the generic [Hashtbl] a heap-block walk
    to hash and a polymorphic-equality C call per probe, plus the tuple
    allocation at every lookup.  Packing the components into one immediate
    int makes hashing and equality single-word operations and removes the
    allocation.

    Each packer documents its bit budget; all fit in OCaml's 63-bit native
    int with room to spare.  Components outside their documented range raise
    [Invalid_argument] — a packed key must never silently collide. *)

val cab_port : cab:int -> port:int -> int
(** [cab] is a node id (at most 30 bits), [port] a 16-bit port number.
    Used by RMP channel and reassembly tables. *)

val cab_txn : cab:int -> txn:int -> int
(** [cab] is a node id (at most 30 bits), [txn] a 32-bit transaction id.
    Used by the request-response duplicate caches. *)

val tcp_conn : lport:int -> raddr:int -> rport:int -> int
(** 16-bit ports and a remote address of at most 30 bits.  The simulator
    derives every address from [Ipv4.addr_of_cab] (0x0a01_0000-based), so
    the range never binds in practice; real 32-bit addresses with the top
    bits set would need a different scheme. *)
