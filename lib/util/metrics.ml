type value =
  | Count of int
  | Gauge of float
  | Hist of { n : int; mean : float; stddev : float; min : float; max : float }

(* Welford state for owned histograms (same recurrence as Stats.Summary,
   which lives above this library in the dependency chain). *)
type hist_state = {
  mutable hn : int;
  mutable hmean : float;
  mutable hm2 : float;
  mutable hmin : float;
  mutable hmax : float;
}

type entry =
  | Counter_thunk of (unit -> int)
  | Gauge_thunk of (unit -> float)
  | Histogram of hist_state

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

let register t name entry =
  if Hashtbl.mem t.entries name then
    invalid_arg (Printf.sprintf "Metrics: %S already registered" name);
  Hashtbl.replace t.entries name entry

let counter t name read = register t name (Counter_thunk read)
let gauge t name read = register t name (Gauge_thunk read)

let histogram t name =
  register t name
    (Histogram { hn = 0; hmean = 0.; hm2 = 0.; hmin = infinity; hmax = neg_infinity })

let observe t name x =
  match Hashtbl.find_opt t.entries name with
  | Some (Histogram h) ->
      h.hn <- h.hn + 1;
      let d = x -. h.hmean in
      h.hmean <- h.hmean +. (d /. float_of_int h.hn);
      h.hm2 <- h.hm2 +. (d *. (x -. h.hmean));
      if x < h.hmin then h.hmin <- x;
      if x > h.hmax then h.hmax <- x
  | Some _ | None ->
      invalid_arg (Printf.sprintf "Metrics.observe: %S is not a histogram" name)

(* Chan's parallel Welford combine.  The empty sides are the edge cases:
   an empty [src] must leave [dst] untouched (its infinity min/max
   sentinels would otherwise poison the result through the delta term),
   and an empty [dst] must take [src]'s state verbatim rather than mix
   real samples with sentinel extrema. *)
let hist_merge dst src =
  if src.hn = 0 then ()
  else if dst.hn = 0 then begin
    dst.hn <- src.hn;
    dst.hmean <- src.hmean;
    dst.hm2 <- src.hm2;
    dst.hmin <- src.hmin;
    dst.hmax <- src.hmax
  end
  else begin
    let na = float_of_int dst.hn and nb = float_of_int src.hn in
    let n = na +. nb in
    let d = src.hmean -. dst.hmean in
    dst.hm2 <- dst.hm2 +. src.hm2 +. (d *. d *. na *. nb /. n);
    dst.hmean <- dst.hmean +. (d *. nb /. n);
    dst.hn <- dst.hn + src.hn;
    if src.hmin < dst.hmin then dst.hmin <- src.hmin;
    if src.hmax > dst.hmax then dst.hmax <- src.hmax
  end

let merge t src =
  Hashtbl.iter
    (fun name entry ->
      match entry with
      | Counter_thunk _ | Gauge_thunk _ ->
          (* thunks read live owner state; there is nothing to fold *)
          ()
      | Histogram h -> (
          match Hashtbl.find_opt t.entries name with
          | Some (Histogram dst) -> hist_merge dst h
          | Some _ ->
              invalid_arg
                (Printf.sprintf "Metrics.merge: %S is not a histogram" name)
          | None ->
              histogram t name;
              (match Hashtbl.find_opt t.entries name with
              | Some (Histogram dst) -> hist_merge dst h
              | _ -> assert false)))
    src.entries

let read = function
  | Counter_thunk f -> Count (f ())
  | Gauge_thunk f -> Gauge (f ())
  | Histogram h ->
      let stddev =
        if h.hn < 2 then 0. else sqrt (Float.max 0. (h.hm2 /. float_of_int h.hn))
      in
      Hist
        {
          n = h.hn;
          mean = (if h.hn = 0 then 0. else h.hmean);
          stddev;
          min = h.hmin;
          max = h.hmax;
        }

let snapshot t =
  Hashtbl.fold (fun name e acc -> (name, read e) :: acc) t.entries []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dump ?(out = stdout) t =
  let snap = snapshot t in
  let width =
    List.fold_left (fun w (name, _) -> Stdlib.max w (String.length name)) 0 snap
  in
  List.iter
    (fun (name, v) ->
      match v with
      | Count n -> Printf.fprintf out "  %-*s %d\n" width name n
      | Gauge g -> Printf.fprintf out "  %-*s %.3f\n" width name g
      | Hist h ->
          if h.n = 0 then Printf.fprintf out "  %-*s n=0\n" width name
          else
            Printf.fprintf out
              "  %-*s n=%d mean=%.1f stddev=%.1f min=%.1f max=%.1f\n" width
              name h.n h.mean h.stddev h.min h.max)
    snap
