let[@inline never] bad name =
  invalid_arg ("Int_key." ^ name ^ ": component out of range")

let[@inline] cab_port ~cab ~port =
  if cab lor port < 0 || cab > 0x3fff_ffff || port > 0xffff then bad "cab_port";
  (cab lsl 16) lor port

let[@inline] cab_txn ~cab ~txn =
  if cab lor txn < 0 || cab > 0x3fff_ffff || txn > 0xffff_ffff then
    bad "cab_txn";
  (cab lsl 32) lor txn

let[@inline] tcp_conn ~lport ~raddr ~rport =
  if
    lport lor raddr lor rport < 0
    || raddr > 0x3fff_ffff
    || lport lor rport > 0xffff
  then bad "tcp_conn";
  (raddr lsl 32) lor (lport lsl 16) lor rport
