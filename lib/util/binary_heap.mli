(** Imperative polymorphic binary min-heap, parameterised by a comparison
    function at creation time.  Used for the CPU ready queue (the simulator
    event queue has its own specialised heap inlined in
    [Nectar_sim.Engine]).

    Performance note: [cmp] is called O(log n) times per push/pop, through a
    closure.  Pass a monomorphic comparison ([Int.compare] on int fields,
    not the polymorphic [compare], which is a C call per invocation) — every
    current caller does. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, or [None] when empty. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate in unspecified order. *)
