type site = Txsnap | Rxread | Hdr | Frag | Host | App

let site_name = function
  | Txsnap -> "txsnap"
  | Rxread -> "rxread"
  | Hdr -> "hdr"
  | Frag -> "frag"
  | Host -> "host"
  | App -> "app"

let all_sites = [ Txsnap; Rxread; Hdr; Frag; Host; App ]

type cell = { mutable ops : int; mutable total : int }

(* (site, owner) -> cell.  The table is tiny (sites x a few owners) and the
   simulation is single-threaded, so a plain hashtable is fine; reports sort
   so iteration order never shows. *)
let cells : (site * string, cell) Hashtbl.t = Hashtbl.create 16

let record ?(owner = "-") site bytes =
  if bytes < 0 then invalid_arg "Copy_meter.record: negative byte count";
  let key = (site, owner) in
  let cell =
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
        let c = { ops = 0; total = 0 } in
        Hashtbl.replace cells key c;
        c
  in
  cell.ops <- cell.ops + 1;
  cell.total <- cell.total + bytes

let fold ?site ?owner f =
  Hashtbl.fold
    (fun (s, o) c acc ->
      let site_ok = match site with None -> true | Some s' -> s = s' in
      let owner_ok = match owner with None -> true | Some o' -> o = o' in
      if site_ok && owner_ok then f acc c else acc)
    cells 0

let copies ?site ?owner () = fold ?site ?owner (fun acc c -> acc + c.ops)
let bytes_copied ?site ?owner () = fold ?site ?owner (fun acc c -> acc + c.total)
let reset () = Hashtbl.reset cells

let report () =
  List.filter_map
    (fun s ->
      match (copies ~site:s (), bytes_copied ~site:s ()) with
      | 0, _ -> None
      | ops, total -> Some (site_name s, ops, total))
    all_sites

let register_metrics reg ~prefix =
  List.iter
    (fun s ->
      let base = prefix ^ "copy." ^ site_name s in
      Metrics.counter reg (base ^ ".ops") (fun () -> copies ~site:s ());
      Metrics.counter reg (base ^ ".bytes") (fun () -> bytes_copied ~site:s ()))
    all_sites

let report_owners () =
  let owners =
    Hashtbl.fold (fun (_, o) _ acc -> if List.mem o acc then acc else o :: acc)
      cells []
    |> List.sort compare
  in
  List.map
    (fun o -> (o, copies ~owner:o (), bytes_copied ~owner:o ()))
    owners
