(** Copy accounting for the zero-copy data path.

    The paper's central runtime claim is that messages move between mailboxes
    and onto the wire without their payload bytes being copied.  Every place
    the implementation still copies payload calls {!record} with the site it
    copied at, so benches and CI can assert — exactly and deterministically —
    which copies remain and that eliminated ones never come back.

    Counters are global and monotonic between {!reset}s; the simulation is
    single-threaded and deterministic, so a given scenario always produces the
    same counts.  Only modelled payload copies are recorded: the simulated
    hardware DMA engines (fiber, memory) move bytes by accounting, not
    [Bytes.blit], and are not copies in the paper's sense. *)

type site =
  | Txsnap  (** transmit-side frame snapshot (the pre-zerocopy [Bytes.sub]) *)
  | Rxread  (** receive-side copy out of a frame instead of a borrowed view *)
  | Hdr  (** header rebuild into a freshly allocated message *)
  | Frag  (** fragmentation / reassembly / segment-build payload copies *)
  | Host  (** host VME boundary: programmed-I/O copy in or out of CAB memory *)
  | App  (** application string boundary (send_string / read_string / ...) *)

val site_name : site -> string
(** Lower-case label: txsnap, rxread, hdr, frag, host, app. *)

val record : ?owner:string -> site -> int -> unit
(** [record ~owner site bytes] counts one copy of [bytes] payload bytes at
    [site], attributed to [owner] (a CAB or host name; default ["-"]). *)

val copies : ?site:site -> ?owner:string -> unit -> int
(** Number of copies recorded, filtered by site and/or owner when given. *)

val bytes_copied : ?site:site -> ?owner:string -> unit -> int
(** Payload bytes copied, filtered by site and/or owner when given. *)

val reset : unit -> unit

val report : unit -> (string * int * int) list
(** Per-site [(site, copies, bytes)] totals, fixed site order, zero sites
    omitted. *)

val report_owners : unit -> (string * int * int) list
(** Per-owner [(owner, copies, bytes)] totals, sorted by owner name. *)

val register_metrics : Metrics.t -> prefix:string -> unit
(** Register per-site ops/bytes counters as [<prefix>copy.<site>.{ops,bytes}]. *)
