let get_u8 b i = Bytes.get_uint8 b i
let set_u8 b i v = Bytes.set_uint8 b i (v land 0xff)
let get_u16 b i = Bytes.get_uint16_be b i
let set_u16 b i v = Bytes.set_uint16_be b i (v land 0xffff)

(* Composed from 16-bit accesses rather than [Bytes.get_int32_be]: the
   [Int32.t] round trip boxes on every call, and u32 reads/writes sit on
   the per-frame header encode/decode path. *)
let get_u32 b i =
  (Bytes.get_uint16_be b i lsl 16) lor Bytes.get_uint16_be b (i + 2)

let set_u32 b i v =
  Bytes.set_uint16_be b i ((v lsr 16) land 0xffff);
  Bytes.set_uint16_be b (i + 2) (v land 0xffff)

let blit ~src ~src_pos ~dst ~dst_pos ~len = Bytes.blit src src_pos dst dst_pos len

let sub_string b ~pos ~len = Bytes.sub_string b pos len

let hex_dump b ~pos ~len =
  let buf = Buffer.create (len * 4) in
  let line_start = ref pos in
  while !line_start < pos + len do
    let n = min 16 (pos + len - !line_start) in
    Buffer.add_string buf (Printf.sprintf "%08x  " (!line_start - pos));
    for i = 0 to 15 do
      if i < n then
        Buffer.add_string buf
          (Printf.sprintf "%02x " (Bytes.get_uint8 b (!line_start + i)))
      else Buffer.add_string buf "   ";
      if i = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_string buf " |";
    for i = 0 to n - 1 do
      let c = Bytes.get b (!line_start + i) in
      Buffer.add_char buf (if c >= ' ' && c < '\x7f' then c else '.')
    done;
    Buffer.add_string buf "|\n";
    line_start := !line_start + 16
  done;
  Buffer.contents buf
