(** nectar-vet: dynamic sanitizers for the CAB runtime.

    Six checkers observe a simulation through the hook registries in
    [Nectar_sim.Vet_probe] and [Nectar_core.Vet_hook]:

    - {b lock-order}: builds the held-while-acquiring graph across all
      mutexes and reports any cycle (a potential deadlock even if this run
      got lucky with timing); also flags locks held across blocking
      operations and across [Condvar.wait] on a different mutex.
    - {b two-phase}: mirrors every message's journey through the mailbox
      protocol of paper Figure 5 and reports protocol violations — a
      [begin_put] never finished, [end_get] of a message that was never
      begun, double [dispose], data access after [enqueue] on the
      zero-copy path.
    - {b heap}: shadow-tracks buffer-heap blocks, poisons freed ranges in
      CAB data memory and verifies the poison on reallocation
      (use-after-free writes), reports double frees and leaked message
      buffers at teardown.
    - {b interrupt}: knows which simulation processes are inside rx-DMA or
      signal-queue upcall handlers and reports any blocking operation or
      contended lock acquire they attempt.
    - {b starvation}: watches the priority scheduler's ready queues and
      reports runnable threads that waited longer than
      [starvation_limit] for the CPU.
    - {b slice}: tracks the zero-copy data path's buffer references —
      [Message.retain]/[release] pairs and the slice views carved out of
      message buffers — and reports over-releases, double releases and
      use-after-release of slices, plus (at a quiesced teardown) slices
      never released and messages freed by their owner whose extra
      references were leaked.

    Checkers cost nothing when not installed: every call site is a single
    reference load. *)

type severity = Info | Warning | Error

type finding = {
  checker : string;  (** "lock-order", "two-phase", "heap", ... *)
  severity : severity;
  message : string;
}

type config = {
  lock_order : bool;
  two_phase : bool;
  heap : bool;
  interrupt : bool;
  starvation : bool;
  starvation_limit : Nectar_sim.Sim_time.span;
      (** longest tolerated ready-queue wait (default 50 sim-ms) *)
  poison : bool;
      (** fill freed heap ranges with 0xDE and verify on realloc *)
  slices : bool;
      (** track buffer references and slice views (the zero-copy path) *)
}

val default_config : config
(** Everything on. *)

val install : ?config:config -> unit -> unit
(** Install the checkers into the runtime hook registries and clear any
    previous findings.  Call before building the world under test. *)

val uninstall : unit -> unit
(** Remove the hooks; accumulated findings remain readable. *)

val teardown : ?quiesced:bool -> unit -> unit
(** Run end-of-simulation checks (message and buffer leaks, starvation
    report).  Pass [~quiesced:false] for runs cut off mid-traffic
    ([Engine.run ~until]), where in-flight state is not a leak. *)

val findings : unit -> finding list
(** All findings so far, in the order reported. *)

val failures : unit -> finding list
(** Findings that should fail a vet run ([Warning] and [Error]). *)

val severity_name : severity -> string
val pp_finding : Format.formatter -> finding -> unit

val report : unit -> string
(** Multi-line rendering of all findings; empty string when clean. *)

val run :
  ?config:config -> ?quiesced:bool -> (unit -> 'a) ->
  ('a, exn) result * finding list
(** [run f] installs the checkers, runs [f], tears down and uninstalls,
    returning [f]'s outcome and every finding.  Teardown treats the run as
    quiesced only when [f] returned normally and [quiesced] (default
    [true]) allows it.  Exceptions from [f] are captured, not re-raised,
    so one broken scenario cannot hide another's findings. *)
