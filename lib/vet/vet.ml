open Nectar_sim
module Ctx = Nectar_core.Ctx
module Vet_hook = Nectar_core.Vet_hook

type severity = Info | Warning | Error

type finding = { checker : string; severity : severity; message : string }

type config = {
  lock_order : bool;
  two_phase : bool;
  heap : bool;
  interrupt : bool;
  starvation : bool;
  starvation_limit : Sim_time.span;
  poison : bool;
  slices : bool;
}

let default_config =
  {
    lock_order = true;
    two_phase = true;
    heap = true;
    interrupt = true;
    starvation = true;
    starvation_limit = Sim_time.ms 50;
    poison = true;
    slices = true;
  }

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

(* ------------------------------------------------------------------ *)
(* Findings log                                                        *)

let max_findings = 500
let log : finding list ref = ref []
let log_count = ref 0
let seen : (string, unit) Hashtbl.t = Hashtbl.create 64

let emit checker severity message =
  let key = checker ^ "\x00" ^ severity_name severity ^ "\x00" ^ message in
  if not (Hashtbl.mem seen key) then begin
    Hashtbl.add seen key ();
    incr log_count;
    if !log_count <= max_findings then
      log := { checker; severity; message } :: !log
    else if !log_count = max_findings + 1 then
      log :=
        {
          checker = "vet";
          severity = Info;
          message = "finding limit reached; further findings suppressed";
        }
        :: !log
  end

let findings () = List.rev !log

let failures () =
  List.filter (fun f -> f.severity <> Info) (findings ())

let pp_finding fmt f =
  Format.fprintf fmt "[%s] %s: %s" (severity_name f.severity) f.checker
    f.message

let report () =
  findings ()
  |> List.map (fun f -> Format.asprintf "%a" pp_finding f)
  |> String.concat "\n"

(* ------------------------------------------------------------------ *)
(* Shared state                                                        *)

let cfg = ref default_config

let pid_of (ctx : Ctx.t) =
  match Engine.current_pid ctx.Ctx.eng with Some p -> p | None -> -1

(* interrupt checker: pids currently inside an interrupt handler body *)
let irq_pids : (int, string) Hashtbl.t = Hashtbl.create 8

let in_interrupt pid = Hashtbl.find_opt irq_pids pid

(* ------------------------------------------------------------------ *)
(* Lock-order checker                                                  *)

let checker_lock = "lock-order"

(* per-process stack of held locks, most recently acquired first *)
let held : (int, (int * string) list) Hashtbl.t = Hashtbl.create 16

(* held-while-acquiring graph: lock id -> successors *)
let lock_edges : (int, int list) Hashtbl.t = Hashtbl.create 16
let lock_names : (int, string) Hashtbl.t = Hashtbl.create 16
let reported_cycles : (int * int, unit) Hashtbl.t = Hashtbl.create 8

let lock_name l =
  match Hashtbl.find_opt lock_names l with
  | Some n -> Printf.sprintf "%s#%d" n l
  | None -> Printf.sprintf "lock#%d" l

let held_of pid = Option.value ~default:[] (Hashtbl.find_opt held pid)

(* path from [src] to [dst] in the edge graph, if any *)
let find_path ~src ~dst =
  let visited = Hashtbl.create 16 in
  let rec dfs node path =
    if node = dst then Some (List.rev (node :: path))
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.add visited node ();
      let succs = Option.value ~default:[] (Hashtbl.find_opt lock_edges node) in
      List.fold_left
        (fun acc s ->
          match acc with Some _ -> acc | None -> dfs s (node :: path))
        None succs
    end
  in
  dfs src []

let add_lock_edge ~from ~to_ =
  let succs = Option.value ~default:[] (Hashtbl.find_opt lock_edges from) in
  if not (List.mem to_ succs) then begin
    Hashtbl.replace lock_edges from (to_ :: succs);
    (* a new edge from -> to_ closes a cycle iff to_ already reaches from *)
    match find_path ~src:to_ ~dst:from with
    | None -> ()
    | Some path ->
        if not (Hashtbl.mem reported_cycles (from, to_)) then begin
          Hashtbl.add reported_cycles (from, to_) ();
          let cycle = path @ [ to_ ] in
          emit checker_lock Error
            (Printf.sprintf
               "lock-order cycle (potential deadlock): %s"
               (String.concat " -> " (List.map lock_name cycle)))
        end
  end

let on_lock_attempt ctx ~lock ~name ~contended =
  if !cfg.interrupt && contended then
    match in_interrupt (pid_of ctx) with
    | Some hname ->
        emit "interrupt" Error
          (Printf.sprintf
             "contended acquire of mutex %s#%d from interrupt handler %s \
              (handlers must not wait)"
             name lock hname)
    | None -> ()

let on_lock_acquired ctx ~lock ~name =
  if !cfg.lock_order then begin
    Hashtbl.replace lock_names lock name;
    let pid = pid_of ctx in
    let stack = held_of pid in
    List.iter (fun (h, _) -> if h <> lock then add_lock_edge ~from:h ~to_:lock)
      stack;
    Hashtbl.replace held pid ((lock, name) :: stack)
  end

let on_lock_released ctx ~lock ~name:_ =
  if !cfg.lock_order then begin
    let pid = pid_of ctx in
    let rec drop = function
      | [] -> []
      | (l, _) :: rest when l = lock -> rest
      | e :: rest -> e :: drop rest
    in
    Hashtbl.replace held pid (drop (held_of pid))
  end

let on_cond_wait ctx ~cond ~lock ~lock_name:lname =
  let pid = pid_of ctx in
  if !cfg.interrupt then begin
    match in_interrupt pid with
    | Some hname ->
        emit "interrupt" Error
          (Printf.sprintf "Condvar.wait on %s from interrupt handler %s" cond
             hname)
    | None -> ()
  end;
  if !cfg.lock_order then begin
    (* the named mutex is atomically released while parked *)
    let rec drop = function
      | [] -> []
      | (l, _) :: rest when l = lock -> rest
      | e :: rest -> e :: drop rest
    in
    let rest = drop (held_of pid) in
    Hashtbl.replace held pid rest;
    match rest with
    | [] -> ()
    | others ->
        emit checker_lock Warning
          (Printf.sprintf
             "%s still held across Condvar.wait on %s (released only %s#%d); \
              waiters on those locks can deadlock"
             (String.concat ", "
                (List.map (fun (l, n) -> Printf.sprintf "%s#%d" n l) others))
             cond lname lock)
  end

let on_blocking ctx ~op =
  let pid = pid_of ctx in
  (if !cfg.interrupt then
     match in_interrupt pid with
     | Some hname ->
         emit "interrupt" Error
           (Printf.sprintf "blocking operation (%s) from interrupt handler %s"
              op hname)
     | None -> ());
  if !cfg.lock_order then
    match held_of pid with
    | [] -> ()
    | locks ->
        emit checker_lock Warning
          (Printf.sprintf "%s held across blocking operation (%s)"
             (String.concat ", "
                (List.map (fun (l, n) -> Printf.sprintf "%s#%d" n l) locks))
             op)

(* ------------------------------------------------------------------ *)
(* Two-phase mailbox protocol checker                                  *)

let checker_2p = "two-phase"

type msg_phase = P_writing | P_queued | P_reading | P_freed

let phase_name = function
  | P_writing -> "writing"
  | P_queued -> "queued"
  | P_reading -> "reading"
  | P_freed -> "freed"

type msg_rec = {
  muid : int;
  mutable mphase : msg_phase;
  mutable mmbox : string;  (* last mailbox seen for this message *)
  mbuf : (int * int) option;  (* (heap, off), None for cached buffers *)
  mutable mrefs : int;  (* buffer references (owner + slices + tx extents) *)
}

let msgs : (int, msg_rec) Hashtbl.t = Hashtbl.create 64

let msg_rec_of ~uid ~mailbox ~phase =
  match Hashtbl.find_opt msgs uid with
  | Some r ->
      if mailbox <> "" then r.mmbox <- mailbox;
      r
  | None ->
      (* first sighting (hooks installed mid-run): adopt silently *)
      let r =
        { muid = uid; mphase = phase; mmbox = mailbox; mbuf = None; mrefs = 1 }
      in
      Hashtbl.add msgs uid r;
      r

let msg_desc r =
  if r.mmbox = "" then Printf.sprintf "message#%d" r.muid
  else Printf.sprintf "message#%d (mailbox %s)" r.muid r.mmbox

let bad_transition r ~op ~expected =
  emit checker_2p Error
    (Printf.sprintf "%s on %s in state '%s' (expected %s)" op (msg_desc r)
       (phase_name r.mphase) expected)

let on_msg_event _ctx ~uid ~mailbox (ev : Vet_hook.msg_event) =
  if !cfg.two_phase then
    match ev with
    | Vet_hook.Begin_put { heap; off; cached; len = _ } ->
        Hashtbl.replace msgs uid
          {
            muid = uid;
            mphase = P_writing;
            mmbox = mailbox;
            mbuf = (if cached then None else Some (heap, off));
            mrefs = 1;
          }
    | Vet_hook.End_put ->
        let r = msg_rec_of ~uid ~mailbox ~phase:P_queued in
        if r.mphase <> P_writing then
          bad_transition r ~op:"end_put" ~expected:"writing"
        else r.mphase <- P_queued
    | Vet_hook.Abort_put ->
        let r = msg_rec_of ~uid ~mailbox ~phase:P_freed in
        if r.mphase <> P_writing then
          bad_transition r ~op:"abort_put" ~expected:"writing"
        else r.mphase <- P_freed
    | Vet_hook.Dispose ->
        let r = msg_rec_of ~uid ~mailbox ~phase:P_freed in
        (match r.mphase with
        | P_writing | P_reading -> r.mphase <- P_freed
        | P_freed ->
            emit checker_2p Error
              (Printf.sprintf "double dispose of %s" (msg_desc r))
        | P_queued ->
            bad_transition r ~op:"dispose" ~expected:"writing or reading")
    | Vet_hook.Begin_get ->
        let r = msg_rec_of ~uid ~mailbox ~phase:P_reading in
        if r.mphase <> P_queued then
          bad_transition r ~op:"begin_get" ~expected:"queued"
        else r.mphase <- P_reading
    | Vet_hook.End_get ->
        let r = msg_rec_of ~uid ~mailbox ~phase:P_freed in
        (match r.mphase with
        | P_reading -> r.mphase <- P_freed
        | P_freed ->
            emit checker_2p Error
              (Printf.sprintf
                 "end_get of %s that is already freed (double end_get or \
                  use after free)"
                 (msg_desc r))
        | _ -> bad_transition r ~op:"end_get" ~expected:"reading")
    | Vet_hook.Enqueue { dst } ->
        let r = msg_rec_of ~uid ~mailbox ~phase:P_queued in
        (match r.mphase with
        | P_writing | P_reading ->
            r.mphase <- P_queued;
            r.mmbox <- dst
        | _ -> bad_transition r ~op:"enqueue" ~expected:"writing or reading")

let on_msg_access ~uid ~state ~op =
  if !cfg.two_phase then
    let where =
      match Hashtbl.find_opt msgs uid with
      | Some r -> msg_desc r
      | None -> Printf.sprintf "message#%d" uid
    in
    if state = "queued" then
      emit checker_2p Error
        (Printf.sprintf
           "%s on %s after enqueue: the zero-copy path hands the buffer to \
            the receiver"
           op where)
    else
      emit checker_2p Error
        (Printf.sprintf "%s on %s after free" op where)

(* ------------------------------------------------------------------ *)
(* Slice / buffer-reference checker                                    *)

let checker_slice = "slice"

type slice_rec = {
  s_suid : int;
  s_msg : int;  (* uid of the message whose buffer it borrows *)
  s_off : int;
  s_len : int;
  mutable slive : bool;
}

let slices : (int, slice_rec) Hashtbl.t = Hashtbl.create 32

let slice_desc s =
  Printf.sprintf "slice#%d [%d,%d) of message#%d" s.s_suid s.s_off
    (s.s_off + s.s_len) s.s_msg

let on_msg_retain ~uid ~refs =
  if !cfg.slices then
    if refs <= 0 then
      emit checker_slice Error
        (Printf.sprintf
           "retain of message#%d after its buffer was freed (refcount %d)" uid
           refs)
    else begin
      (* adopt unseen messages in a neutral phase: retain says nothing about
         the two-phase state *)
      let r = msg_rec_of ~uid ~mailbox:"" ~phase:P_queued in
      r.mrefs <- refs
    end

let on_msg_release ~uid ~refs ~live =
  if !cfg.slices then
    if not live then
      emit checker_slice Error
        (Printf.sprintf
           "over-release of message#%d: more releases than retains (refcount \
            %d)"
           uid refs)
    else begin
      let r = msg_rec_of ~uid ~mailbox:"" ~phase:P_queued in
      r.mrefs <- refs
    end

let on_slice_make ~suid ~uid ~off ~len =
  if !cfg.slices then
    Hashtbl.replace slices suid
      { s_suid = suid; s_msg = uid; s_off = off; s_len = len; slive = true }

let on_slice_release ~suid ~live =
  if !cfg.slices then begin
    let desc =
      match Hashtbl.find_opt slices suid with
      | Some s -> slice_desc s
      | None -> Printf.sprintf "slice#%d" suid
    in
    if not live then
      emit checker_slice Error (Printf.sprintf "double release of %s" desc)
    else
      match Hashtbl.find_opt slices suid with
      | Some s -> s.slive <- false
      | None -> ()
  end

(* called by the runtime only on a violation (access on a released slice) *)
let on_slice_access ~suid ~op =
  if !cfg.slices then
    let desc =
      match Hashtbl.find_opt slices suid with
      | Some s -> slice_desc s
      | None -> Printf.sprintf "slice#%d" suid
    in
    emit checker_slice Error
      (Printf.sprintf "use after release: %s on released %s" op desc)

(* ------------------------------------------------------------------ *)
(* Buffer-heap sanitizer                                               *)

let checker_heap = "heap"
let poison_byte = '\xde'

type heap_rec = {
  hid : int;
  mutable hname : string;
  mutable hmem : Bytes.t option;
  hlive : (int, int) Hashtbl.t;  (* off -> len *)
  hquarantine : (int, int) Hashtbl.t;  (* freed & poisoned: off -> len *)
  hpersistent : (int, unit) Hashtbl.t;
}

let heaps : (int, heap_rec) Hashtbl.t = Hashtbl.create 8

let heap_rec_of hid =
  match Hashtbl.find_opt heaps hid with
  | Some h -> h
  | None ->
      let h =
        {
          hid;
          hname = Printf.sprintf "heap#%d" hid;
          hmem = None;
          hlive = Hashtbl.create 32;
          hquarantine = Hashtbl.create 32;
          hpersistent = Hashtbl.create 4;
        }
      in
      Hashtbl.add heaps hid h;
      h

let on_heap_attach ~heap ~name ~mem ~base:_ ~size:_ =
  if !cfg.heap then begin
    let h = heap_rec_of heap in
    (* keep the first real name: later attaches (one per mailbox sharing
       the heap) carry a generic label *)
    if h.hname = Printf.sprintf "heap#%d" heap then h.hname <- name;
    if h.hmem = None then h.hmem <- Some mem
  end

let on_heap_persistent ~heap ~off =
  if !cfg.heap then Hashtbl.replace (heap_rec_of heap).hpersistent off ()

(* first offset in [off, off+len) whose poison got overwritten, if any,
   with the overwriting byte (its value often identifies the writer) *)
let poison_damage mem ~off ~len =
  let rec scan i =
    if i >= off + len then None
    else if Bytes.get mem i <> poison_byte then
      Some (i, Char.code (Bytes.get mem i))
    else scan (i + 1)
  in
  scan off

let check_quarantine_range h ~off ~len ~when_ =
  match h.hmem with
  | None -> ()
  | Some mem ->
      Hashtbl.fold
        (fun qoff qlen acc ->
          let lo = max off qoff and hi = min (off + len) (qoff + qlen) in
          if lo < hi then (qoff, lo, hi) :: acc else acc)
        h.hquarantine []
      |> List.iter (fun (qoff, lo, hi) ->
             (match poison_damage mem ~off:lo ~len:(hi - lo) with
             | Some (bad, byte) ->
                 emit checker_heap Error
                   (Printf.sprintf
                      "use-after-free write in %s: freed block at %d was \
                       modified at offset %d (found byte 0x%02x, %s)"
                      h.hname qoff bad byte when_)
             | None -> ());
             Hashtbl.remove h.hquarantine qoff)

let on_heap_alloc ~heap ~off ~len =
  if !cfg.heap then begin
    let h = heap_rec_of heap in
    if !cfg.poison then
      check_quarantine_range h ~off ~len ~when_:"detected at reallocation";
    Hashtbl.replace h.hlive off len
  end

let on_heap_free ~heap ~off ~live =
  if !cfg.heap then begin
    let h = heap_rec_of heap in
    if not live then
      emit checker_heap Error
        (Printf.sprintf "double free in %s at offset %d" h.hname off)
    else begin
      let len =
        match Hashtbl.find_opt h.hlive off with Some l -> l | None -> 0
      in
      Hashtbl.remove h.hlive off;
      if !cfg.poison && len > 0 then begin
        (match h.hmem with
        | Some mem -> Bytes.fill mem off len poison_byte
        | None -> ());
        Hashtbl.replace h.hquarantine off len
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Starvation watchdog                                                 *)

let checker_starve = "starvation"

(* "cpu/owner" -> longest observed ready-queue wait *)
let max_wait : (string, int) Hashtbl.t = Hashtbl.create 16

let on_cpu_wait ~cpu ~owner ~priority:_ ~waited =
  if !cfg.starvation && waited > 0 then begin
    let key = cpu ^ "/" ^ owner in
    let prev = Option.value ~default:0 (Hashtbl.find_opt max_wait key) in
    if waited > prev then Hashtbl.replace max_wait key waited
  end

(* ------------------------------------------------------------------ *)
(* Interrupt-context tracking                                          *)

let on_interrupt_enter ~pid ~name =
  if !cfg.interrupt then Hashtbl.replace irq_pids pid name

let on_interrupt_exit ~pid = Hashtbl.remove irq_pids pid

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let reset_state () =
  log := [];
  log_count := 0;
  Hashtbl.reset seen;
  Hashtbl.reset irq_pids;
  Hashtbl.reset held;
  Hashtbl.reset lock_edges;
  Hashtbl.reset lock_names;
  Hashtbl.reset reported_cycles;
  Hashtbl.reset msgs;
  Hashtbl.reset slices;
  Hashtbl.reset heaps;
  Hashtbl.reset max_wait

let install ?(config = default_config) () =
  reset_state ();
  cfg := config;
  Vet_hook.install
    {
      Vet_hook.lock_attempt = on_lock_attempt;
      lock_acquired = on_lock_acquired;
      lock_released = on_lock_released;
      cond_wait = on_cond_wait;
      blocking = on_blocking;
      msg_event = on_msg_event;
      msg_access = on_msg_access;
      msg_retain = on_msg_retain;
      msg_release = on_msg_release;
      slice_make = on_slice_make;
      slice_release = on_slice_release;
      slice_access = on_slice_access;
      heap_attach = on_heap_attach;
      heap_persistent = on_heap_persistent;
      heap_alloc = on_heap_alloc;
      heap_free = on_heap_free;
    };
  Vet_probe.install
    {
      Vet_probe.cpu_wait = on_cpu_wait;
      interrupt_enter = on_interrupt_enter;
      interrupt_exit = on_interrupt_exit;
    }

let uninstall () =
  Vet_hook.uninstall ();
  Vet_probe.uninstall ()

let teardown ?(quiesced = true) () =
  if !cfg.two_phase && quiesced then
    Hashtbl.iter
      (fun _ r ->
        match r.mphase with
        | P_writing ->
            emit checker_2p Error
              (Printf.sprintf
                 "leaked two-phase put: %s reached end of run still in the \
                  writing state (begin_put without end_put/abort_put)"
                 (msg_desc r))
        | P_reading ->
            emit checker_2p Error
              (Printf.sprintf
                 "%s reached end of run still held by a reader (begin_get \
                  without end_get)"
                 (msg_desc r))
        | P_queued | P_freed -> ())
      msgs;
  if !cfg.slices && quiesced then begin
    Hashtbl.iter
      (fun _ s ->
        if s.slive then
          emit checker_slice Error
            (Printf.sprintf "leaked slice: %s was never released"
               (slice_desc s)))
      slices;
    Hashtbl.iter
      (fun _ r ->
        if r.mphase = P_freed && r.mrefs > 0 then
          emit checker_slice Error
            (Printf.sprintf
               "leaked retain: %s was freed by its owner but %d buffer \
                reference(s) were never released"
               (msg_desc r) r.mrefs))
      msgs
  end;
  if !cfg.heap then begin
    (* poison sweep: freed ranges must still be intact even if never reused *)
    if !cfg.poison then
      Hashtbl.iter
        (fun _ h ->
          match h.hmem with
          | None -> ()
          | Some mem ->
              Hashtbl.iter
                (fun qoff qlen ->
                  match poison_damage mem ~off:qoff ~len:qlen with
                  | Some (bad, byte) ->
                      emit checker_heap Error
                        (Printf.sprintf
                           "use-after-free write in %s: freed block at %d \
                            was modified at offset %d (found byte 0x%02x, \
                            detected at teardown)"
                           h.hname qoff bad byte)
                  | None -> ())
                h.hquarantine)
        heaps;
    if quiesced then
      Hashtbl.iter
        (fun _ h ->
          let leaked =
            Hashtbl.fold
              (fun off _len acc ->
                if Hashtbl.mem h.hpersistent off then acc else off :: acc)
              h.hlive []
          in
          match List.length leaked with
          | 0 -> ()
          | n ->
              emit checker_heap Info
                (Printf.sprintf
                   "%s: %d block(s) still allocated at end of run" h.hname n))
        heaps
  end;
  if !cfg.starvation then
    Hashtbl.iter
      (fun key waited ->
        if waited > !cfg.starvation_limit then
          emit checker_starve Warning
            (Printf.sprintf
               "%s was runnable but waited %s for the CPU (limit %s)" key
               (Sim_time.to_string waited)
               (Sim_time.to_string !cfg.starvation_limit)))
      max_wait

let run ?config ?(quiesced = true) f =
  install ?config ();
  let result = match f () with v -> Ok v | exception e -> Result.Error e in
  (match result with
  | Ok _ -> teardown ~quiesced ()
  | Result.Error _ -> teardown ~quiesced:false ());
  uninstall ();
  (result, findings ())
