(* Graceful degradation: goodput against injected wire loss for RMP and
   TCP, emitted as JSON (the source for the degradation table in
   EXPERIMENTS.md).

   Each point moves a fixed 256 KB CAB-to-CAB under a seeded per-frame
   drop rate.  Goodput counts only bytes that reached the receiving
   application, over the time of the last arrival; sends that exhaust the
   retry budget surface as typed errors and are counted, not crashed on. *)

open Nectar_sim
open Nectar_core
open Nectar_proto
module Chaos = Nectar_chaos.Chaos
module Plan = Nectar_chaos.Chaos.Plan
let seed = 1990
let rates = [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ]
let msg_bytes = 4096
let total_bytes = 256 * 1024

type point = { drop : float; goodput : float; retx : int; errors : int }

let drop_faults w drop =
  Chaos.install w
    {
      Plan.seed;
      steps =
        [
          Plan.step Sim_time.zero
            (Plan.Wire_faults { drop; corrupt = 0.0; burst = 1 });
        ];
    }

let rmp_point drop =
  let w = Chaos.build_world () in
  let a = w.Chaos.stacks.(0) and b = w.Chaos.stacks.(1) in
  drop_faults w drop;
  let k = total_bytes / msg_bytes in
  let received = ref 0 and last_rx = ref 1 in
  let inbox =
    Runtime.create_mailbox b.Stack.rt ~name:"chaos-bench-sink" ~port:900
      ~byte_limit:(128 * 1024) ()
  in
  ignore
    (Thread.create (Runtime.cab b.Stack.rt) ~name:"sink" (fun ctx ->
         while true do
           let m = Mailbox.begin_get ctx inbox in
           Mailbox.end_get ctx m;
           incr received;
           last_rx := Engine.now w.Chaos.eng
         done));
  let errors = ref 0 in
  ignore
    (Thread.create (Runtime.cab a.Stack.rt) ~name:"source" (fun ctx ->
         let payload = String.make msg_bytes 'r' in
         for _ = 1 to k do
           match
             Rmp.send_string ctx a.Stack.rmp ~dst_cab:(Stack.node_id b)
               ~dst_port:900 payload
           with
           | () -> ()
           | exception Rmp.Delivery_timeout _ -> incr errors
         done));
  Engine.run w.Chaos.eng;
  {
    drop;
    goodput =
      Stats.Throughput.mbit_per_s ~bytes_moved:(!received * msg_bytes)
        ~elapsed:!last_rx;
    retx = Rmp.retransmits a.Stack.rmp;
    errors = !errors;
  }

let tcp_point drop =
  let w =
    Chaos.build_world
      ~stack_opts:(fun rt -> Stack.create rt ~tcp_mss:msg_bytes ())
      ()
  in
  let a = w.Chaos.stacks.(0) and b = w.Chaos.stacks.(1) in
  drop_faults w drop;
  let k = total_bytes / msg_bytes in
  let received = ref 0 and last_rx = ref 1 in
  Tcp.listen b.Stack.tcp ~port:80 ~on_accept:(fun conn ->
      ignore
        (Thread.create (Runtime.cab b.Stack.rt) ~name:"sink" (fun ctx ->
             while !received < total_bytes do
               received := !received + String.length (Tcp.recv_string ctx conn);
               last_rx := Engine.now w.Chaos.eng
             done)));
  let errors = ref 0 in
  ignore
    (Thread.create (Runtime.cab a.Stack.rt) ~name:"source" (fun ctx ->
         let conn =
           Tcp.connect ctx a.Stack.tcp ~dst:(Stack.addr b) ~dst_port:80 ()
         in
         let payload = String.make msg_bytes 't' in
         try
           for _ = 1 to k do
             Tcp.send ctx conn payload
           done
         with Tcp.Connection_timed_out | Tcp.Connection_reset -> incr errors));
  Engine.run w.Chaos.eng;
  {
    drop;
    goodput =
      Stats.Throughput.mbit_per_s ~bytes_moved:!received ~elapsed:!last_rx;
    retx = Tcp.retransmissions a.Stack.tcp;
    errors = !errors;
  }

let json_points points =
  String.concat ","
    (List.map
       (fun p ->
         Printf.sprintf
           "\n      {\"drop\":%g,\"goodput_mbit_s\":%.2f,\"retransmits\":%d,\"errors\":%d}"
           p.drop p.goodput p.retx p.errors)
       points)

let run () =
  let rmp = List.map rmp_point rates in
  let tcp = List.map tcp_point rates in
  Printf.printf
    "{\n\
    \  \"experiment\": \"chaos-degradation\",\n\
    \  \"seed\": %d,\n\
    \  \"transfer_bytes\": %d,\n\
    \  \"message_bytes\": %d,\n\
    \  \"series\": [\n\
    \    {\"protocol\": \"rmp\", \"points\": [%s]},\n\
    \    {\"protocol\": \"tcp\", \"points\": [%s]}\n\
    \  ]\n\
     }\n"
    seed total_bytes msg_bytes (json_points rmp) (json_points tcp)
