(* Parallel-engine scaling bench (beyond the paper — see EXPERIMENTS.md).

   A 64-CAB fleet on an 8x2 HUB torus (4 CABs per hub), exchanging
   fixed-size frames at the wire level, swept over 1/2/4/8 domains.  The
   torus is partitioned into contiguous row blocks; the south trunks
   crossing a cut become store-and-forward boundary links whose fixed
   latency is exactly the conservative scheduler's lookahead.

   What is deterministic (and gated, including from perf-smoke in CI):

   - every node's traffic schedule is a pure function of (seed, node id)
     via Rng.stream — independent of the partition count;
   - total delivered = total sent at every domain count (per-partition
     wire conservation: sent + injected = delivered + handed_off);
   - two runs at the same domain count agree on every per-partition
     counter, every final time, and the window/crossing stats.

   What is machine-dependent (recorded in BENCH_perf.json, never gated
   in CI unless the machine has >= 4 cores): wall-clock speedup over the
   single-domain run, and the resident engine footprint per node. *)

open Nectar_sim
module Net = Nectar_hub.Network
module Frame = Nectar_hub.Frame

(* ---------- fleet shape ---------- *)

let rows = 8
let cols = 2
let hubs = rows * cols
let seats = 4 (* CABs per hub, ports 0..3 *)
let nodes = hubs * seats
let frame_bytes = 1024
let boundary_ns = 20_000 (* south-trunk latency across a cut = lookahead *)
let seed = 1990

let hub_of_node n = n / seats
let global_hub r c = (r * cols) + c

(* ---------- deterministic traffic schedule ---------- *)

(* Per node: [(gap_ns, dst); ...], a pure function of (seed, node) so the
   workload cannot depend on how the fleet is partitioned. *)
let schedule ~msgs n =
  let rng = Rng.stream ~seed ~index:n in
  List.init msgs (fun _ ->
      let gap = Rng.int_in rng 2_000 60_000 in
      let d = Rng.int rng (nodes - 1) in
      let dst = if d >= n then d + 1 else d in
      (gap, dst))

(* Dimension-ordered (XY, no-wrap) source routes from the reusable
   [Policy.Ecube] arithmetic (see its .mli for the cut-through
   deadlock-freedom argument; BFS shortest routes over the wrap trunks
   do deadlock this fleet).  The same global port list works at every
   domain count: partitioned networks walk it across their boundary
   ports. *)
let route_ports ~src ~dst =
  Nectar_route.Policy.ecube_route ~rows ~cols ~src_hub:(hub_of_node src)
    ~dst_hub:(hub_of_node dst)
  @ [ dst mod seats ]

(* ---------- partitioned worlds ---------- *)

type partition = {
  p_net : Net.t;
  mutable p_delivered : int;
}

type handoff = {
  h_hub : int; (* global hub index of the boundary trunk's far end *)
  h_route : int list;
  h_src : int;
  h_fid : int;
  h_payload : string;
}

(* Partition [p] of [domains] owns rows [p*rpd, (p+1)*rpd); every hub
   keeps its global port wiring, with cut-crossing south trunks turned
   into remote links carrying the far-end global hub as the link id. *)
let build_partition ~domains ~msgs ~self ~send =
  let rpd = rows / domains in
  let first_row = self * rpd in
  let owner g = g / cols / rpd in
  let local_hub g = g - (first_row * cols) in
  let eng = Engine.create () in
  let net = Net.create eng ~hubs:(rpd * cols) () in
  for r = first_row to first_row + rpd - 1 do
    for c = 0 to cols - 1 do
      let g = global_hub r c in
      Net.connect_hubs net
        (local_hub g, 15)
        (local_hub (global_hub r ((c + 1) mod cols)), 14);
      let south = global_hub ((r + 1) mod rows) c in
      if owner south = self then
        Net.connect_hubs net (local_hub g, 13) (local_hub south, 12)
      else
        Net.connect_remote net (local_hub g, 13) ~link:south
          ~latency_ns:boundary_ns;
      let north = global_hub ((r + rows - 1) mod rows) c in
      if owner north <> self then
        Net.connect_remote net (local_hub g, 12) ~link:north
          ~latency_ns:boundary_ns
    done
  done;
  let part = { p_net = net; p_delivered = 0 } in
  let attach g s =
    let fifo =
      Byte_fifo.create eng ~capacity:(64 * 1024)
        ~name:(Printf.sprintf "cab%d.%d" g s)
    in
    let sink =
      {
        Net.in_fifo = fifo;
        on_frame_start = (fun _ -> ());
        on_chunk =
          (fun frame ~arrived:_ ~last ->
            if last then begin
              ignore (Byte_fifo.try_pop fifo (Frame.length frame));
              Frame.release frame;
              part.p_delivered <- part.p_delivered + 1
            end);
      }
    in
    Net.attach_node net ~hub:(local_hub g) ~port:s sink
  in
  for r = first_row to first_row + rpd - 1 do
    for c = 0 to cols - 1 do
      for s = 0 to seats - 1 do
        let g = global_hub r c in
        let local = attach g s in
        let n = (g * seats) + s in
        let plan = schedule ~msgs n in
        Engine.spawn eng ~name:(Printf.sprintf "src%d" n) (fun () ->
            List.iteri
              (fun k (gap, dst) ->
                Engine.sleep eng gap;
                let frame =
                  Frame.create
                    ~id:((n * 65536) + k)
                    ~src:n
                    ~data:(Bytes.make frame_bytes 'x')
                in
                Net.transmit net ~src:local ~route:(route_ports ~src:n ~dst)
                  frame)
              plan)
      done
    done
  done;
  Net.set_remote_forward net
    (Some
       (fun ~link ~at ~route ~src ~frame_id ~payload ->
         send ~dst:(owner link) ~time:at
           { h_hub = link; h_route = route; h_src = src; h_fid = frame_id;
             h_payload = payload }));
  let ep_receive ~time ~src:_ m =
    ignore
      (Engine.at eng time (fun () ->
           Net.inject net ~hub:(local_hub m.h_hub) ~src:m.h_src
             ~frame_id:m.h_fid ~route:m.h_route m.h_payload))
  in
  ({ Parallel.ep_engine = eng; ep_receive }, part)

type run_result = {
  delivered : int array; (* per partition *)
  sent : int array;
  handed_off : int array;
  injected : int array;
  finals : Sim_time.t array;
  windows : int;
  crossed : int;
}

let run_once ~domains ~msgs =
  let out =
    Parallel.run ~lookahead:boundary_ns ~domains
      ~build:(fun ~self ~send -> build_partition ~domains ~msgs ~self ~send)
      ()
  in
  {
    delivered = Array.map (fun p -> p.p_delivered) out.Parallel.results;
    sent = Array.map (fun p -> Net.frames_sent p.p_net) out.Parallel.results;
    handed_off =
      Array.map (fun p -> Net.remote_handoffs p.p_net) out.Parallel.results;
    injected =
      Array.map (fun p -> Net.remote_injections p.p_net) out.Parallel.results;
    finals = out.Parallel.final_times;
    windows = out.Parallel.stats.Parallel.windows;
    crossed = out.Parallel.stats.Parallel.crossed;
  }

let sum = Array.fold_left ( + ) 0

(* Resident heap per node of a fully built (unrun) single-domain fleet —
   the per-node engine footprint recorded in BENCH_perf.json. *)
let mem_bytes_per_node ~msgs =
  let keep = ref [] in
  Gc.full_major ();
  let before = (Gc.stat ()).Gc.live_words in
  let world =
    build_partition ~domains:1 ~msgs ~self:0
      ~send:(fun ~dst:_ ~time:_ _ -> ())
  in
  keep := [ world ];
  Gc.full_major ();
  let after = (Gc.stat ()).Gc.live_words in
  ignore (Sys.opaque_identity !keep);
  (after - before) * (Sys.word_size / 8) / nodes

(* ---------- sweep ---------- *)

type point = {
  domains : int;
  wall_s : float;
  speedup : float; (* vs the 1-domain run, same workload *)
  p_windows : int;
  p_crossed : int;
  p_delivered : int;
  final_time : Sim_time.t; (* max over partitions *)
}

type result = {
  r_nodes : int;
  r_msgs : int;
  r_cores : int;
  r_lookahead_ns : int;
  r_mem_bytes_per_node : int;
  r_points : point list;
}

(* [check] is the caller's assertion sink (perf.ml's failure counter). *)
let measure ~smoke ~check () =
  let msgs = if smoke then 4 else 32 in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let total = nodes * msgs in
  let points =
    List.map
      (fun domains ->
        let t0 = Unix.gettimeofday () in
        let r = run_once ~domains ~msgs in
        let wall = Unix.gettimeofday () -. t0 in
        check
          (Printf.sprintf "scaling %dd: delivered %d/%d" domains
             (sum r.delivered) total)
          (sum r.delivered = total);
        Array.iteri
          (fun p _ ->
            check
              (Printf.sprintf "scaling %dd: partition %d wire conservation"
                 domains p)
              (r.sent.(p) + r.injected.(p)
              = r.delivered.(p) + r.handed_off.(p)))
          r.delivered;
        check
          (Printf.sprintf "scaling %dd: handoffs balance (%d out, %d in)"
             domains (sum r.handed_off) (sum r.injected))
          (sum r.handed_off = sum r.injected);
        if domains > 1 then begin
          check
            (Printf.sprintf "scaling %dd: crossings counted (%d)" domains
               r.crossed)
            (r.crossed = sum r.handed_off && r.crossed > 0);
          (* determinism-modulo-partition: an identical second run *)
          let r2 = run_once ~domains ~msgs in
          check
            (Printf.sprintf "scaling %dd: double-run determinism" domains)
            (r.delivered = r2.delivered && r.sent = r2.sent
            && r.handed_off = r2.handed_off
            && r.injected = r2.injected && r.finals = r2.finals
            && r.windows = r2.windows && r.crossed = r2.crossed)
        end;
        (domains, wall, r))
      domain_counts
  in
  let wall1 =
    match points with (1, w, _) :: _ -> w | _ -> invalid_arg "scaling"
  in
  let cores = Domain.recommended_domain_count () in
  (* The >= 2x-at-4-domains acceptance gate is a statement about parallel
     hardware: on fewer than 4 cores the honest numbers are recorded but
     asserting them would only test the host machine. *)
  List.iter
    (fun (d, w, _) ->
      if d = 4 && cores >= 4 then
        check
          (Printf.sprintf "scaling: >= 2.0x at 4 domains (%.2fx on %d cores)"
             (wall1 /. w) cores)
          (wall1 /. w >= 2.0))
    points;
  let mem = mem_bytes_per_node ~msgs in
  check
    (Printf.sprintf "scaling: engine footprint %d B/node sane" mem)
    (mem > 0 && mem < 2_000_000);
  {
    r_nodes = nodes;
    r_msgs = msgs;
    r_cores = cores;
    r_lookahead_ns = boundary_ns;
    r_mem_bytes_per_node = mem;
    r_points =
      List.map
        (fun (d, w, r) ->
          {
            domains = d;
            wall_s = w;
            speedup = wall1 /. w;
            p_windows = r.windows;
            p_crossed = r.crossed;
            p_delivered = sum r.delivered;
            final_time = Array.fold_left max 0 r.finals;
          })
        points;
  }

let print r =
  Printf.printf
    "  parallel engine, %d CABs on a %dx%d torus, %d msgs/node (%d cores):\n"
    r.r_nodes rows cols r.r_msgs r.r_cores;
  List.iter
    (fun p ->
      Printf.printf
        "    %d domain%s  %6.3f s wall  %5.2fx  (%d windows, %d crossings)\n"
        p.domains
        (if p.domains = 1 then " " else "s")
        p.wall_s p.speedup p.p_windows p.p_crossed)
    r.r_points;
  Printf.printf "    engine footprint %d B/node\n" r.r_mem_bytes_per_node

let json_fragment r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "  \"scaling\": {\n\
    \    \"note\": \"wall clock and speedup are machine-dependent (this run: \
     %d cores); delivered/windows/crossings are deterministic and asserted\",\n\
    \    \"nodes\": %d, \"torus\": \"%dx%d\", \"msgs_per_node\": %d,\n\
    \    \"lookahead_ns\": %d, \"mem_bytes_per_node\": %d, \"cores\": %d,\n\
    \    \"points\": [\n"
    r.r_cores r.r_nodes rows cols r.r_msgs r.r_lookahead_ns
    r.r_mem_bytes_per_node r.r_cores;
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"domains\": %d, \"wall_s\": %.3f, \"speedup\": %.2f, \
         \"windows\": %d, \"crossings\": %d, \"delivered\": %d, \
         \"final_sim_ns\": %d }%s\n"
        p.domains p.wall_s p.speedup p.p_windows p.p_crossed p.p_delivered
        p.final_time
        (if i = List.length r.r_points - 1 then "" else ","))
    r.r_points;
  Buffer.add_string b "  ] }";
  Buffer.contents b

(* Standalone experiment (the @parallel CI alias runs the smoke form). *)
let run ~smoke () =
  Bench_world.section
    (if smoke then "Parallel scaling (smoke: 2 domains, determinism gates)"
     else "Parallel scaling: 64-CAB torus over 1/2/4/8 domains");
  let failures = ref 0 in
  let check what ok =
    if not ok then begin
      incr failures;
      Printf.printf "  FAIL: %s\n" what
    end
  in
  let r = measure ~smoke ~check () in
  print r;
  if !failures > 0 then begin
    Printf.printf "  scaling: %d check(s) FAILED\n" !failures;
    exit 1
  end
  else Printf.printf "  scaling: all deterministic checks passed\n"
