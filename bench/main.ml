(* Bench harness: regenerates every table and figure of the paper's
   evaluation (section 6) plus the design-choice ablations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig7    -- one experiment
*)

let experiments =
  [
    ("table1", Table1.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("ablations", Ablations.run);
    ("micro", Micro.run);
    ("chaos", Chaos.run);
    (* beyond-the-paper experiments; not in the default list so the
       default run keeps producing exactly the paper tables *)
    ("failover", Failover.run);
    ("perf", Perf.run ~smoke:false);
    ("perf-smoke", Perf.run ~smoke:true);
    ("scaling", Scaling.run ~smoke:false);
    ("scaling-smoke", Scaling.run ~smoke:true);
    ("fleet", Fleet_bench.run ~smoke:false);
    ("fleet-smoke", Fleet_bench.run ~smoke:true);
    ("coll", Coll_bench.run ~smoke:false);
    ("coll-smoke", Coll_bench.run ~smoke:true);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> [ "table1"; "fig6"; "fig7"; "fig8"; "ablations"; "micro"; "chaos" ]
  in
  Printf.printf
    "Nectar communication processor: reproduction of the SIGCOMM'90\n\
     evaluation (simulated hardware; see DESIGN.md and EXPERIMENTS.md)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested
