(* Collectives bench (beyond the paper — see EXPERIMENTS.md).

   CAB-resident barrier/reduce/broadcast over the lib/coll spanning tree
   versus the host-driven baseline (every participant's arrival crosses
   to the host at the root), on 64/256/1024-CAB torus fleets.  All
   latencies are simulated and deterministic — pure functions of the
   cost model — so the smoke form gates them in CI:

   - the tree path wakes the host exactly once per operation (the
     baseline exactly once per participant), asserted from the root
     runtime's notification count;
   - the tree path's barrier p99 beats the baseline's at every size;
   - the recorded 64-CAB tree barrier p50 reproduces exactly.

   The root's per-operation critical path is also span-traced
   ("coll.op" / "coll.host_op" on the root's track) and the mean span
   must agree with the measured latencies. *)

open Nectar_sim
open Nectar_core
module Coll = Nectar_coll.Coll
module Tree = Nectar_coll.Coll.Tree
module Topology = Nectar_fleet.Topology
module Stack = Nectar_proto.Stack

let torus_for cabs =
  match cabs with
  | 64 -> Topology.Torus { rows = 4; cols = 4; seats = 4 }
  | 256 -> Topology.Torus { rows = 8; cols = 8; seats = 4 }
  | 1024 -> Topology.Torus { rows = 16; cols = 16; seats = 4 }
  | _ -> invalid_arg "coll: unknown size"

type point = {
  cabs : int;
  mode : string; (* "tree" | "host" *)
  ops : int;
  depth : int;
  fanout : int;
  wakeups : int;
  b_p50_us : float;
  b_p99_us : float;
  r_p50_us : float;
  r_p99_us : float;
  c_p50_us : float;
  c_p99_us : float;
  span_mean_us : float;
  wall_s : float;
}

let pct s p = Stats.Summary.percentile s p /. 1e3

(* Mean duration of the completed [label] spans in the tracer ring:
   Span_begin carries the label, Span_end is matched by id. *)
let span_mean_us tracer label =
  let begins = Hashtbl.create 64 in
  let total = ref 0. and n = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Span_begin when e.label = label ->
          Hashtbl.replace begins e.id e.time
      | Trace.Span_end -> (
          match Hashtbl.find_opt begins e.id with
          | Some t0 ->
              total := !total +. float_of_int (e.time - t0);
              incr n
          | None -> ())
      | _ -> ())
    (Trace.events tracer);
  if !n = 0 then 0. else !total /. float_of_int !n /. 1e3

let run_point ~check ~cabs ~ops ~host =
  let w = Coll.World.build (torus_for cabs) in
  let n = Array.length w.Coll.World.colls in
  let root = Tree.root w.Coll.World.tree in
  let b_lat = Stats.Summary.create ~keep_samples:true () in
  let r_lat = Stats.Summary.create ~keep_samples:true () in
  let c_lat = Stats.Summary.create ~keep_samples:true () in
  let barrier, reduce, bcast =
    if host then (Coll.host_barrier, Coll.host_reduce, Coll.host_bcast)
    else (Coll.barrier, Coll.reduce, Coll.bcast)
  in
  let expect_sum = n * (n + 1) / 2 in
  (* Span-trace the root's critical path.  Every layer under the
     collective also emits events once a tracer is installed, so tracing
     the whole run would wrap the ring and evict the "coll.op" begins;
     instead the root installs the tracer for the final iteration only —
     zero simulated cost, so the measured latencies are unchanged. *)
  (* the ring must hold one full iteration of every layer's events even
     at 1024 CABs (~4k frames/op, dozens of events each) *)
  let tracer = Trace.create ~capacity:(1 lsl 20) w.Coll.World.eng in
  Array.iteri
    (fun i c ->
      ignore
        (Thread.create
           (Runtime.cab w.Coll.World.stacks.(i).Stack.rt)
           ~name:(Printf.sprintf "coll-app%d" i)
           (fun ctx ->
             let timed s f =
               if i = root then begin
                 let t0 = Engine.now ctx.Ctx.eng in
                 f ();
                 Stats.Summary.add s
                   (float_of_int (Engine.now ctx.Ctx.eng - t0))
               end
               else f ()
             in
             for it = 1 to ops do
               if i = root && it = ops then Trace.install tracer;
               timed b_lat (fun () -> barrier ctx c);
               timed r_lat (fun () ->
                   if reduce ctx c (i + 1) <> expect_sum then
                     failwith "coll: bad reduce");
               let payload = if i = root then Some "go" else None in
               timed c_lat (fun () ->
                   if bcast ctx c payload <> "go" then
                     failwith "coll: bad bcast")
             done)))
    w.Coll.World.colls;
  let t0 = Unix.gettimeofday () in
  Engine.run w.Coll.World.eng;
  let wall = Unix.gettimeofday () -. t0 in
  Trace.uninstall ();
  let mode = if host then "host" else "tree" in
  let what fmt =
    Printf.ksprintf
      (fun s -> Printf.sprintf "coll %d/%s: %s" cabs mode s)
      fmt
  in
  let wakeups = Runtime.host_notifications w.Coll.World.stacks.(root).Stack.rt in
  let per_op = 3 * ops in
  if host then
    check
      (what "one wakeup per participant per op (%d)" wakeups)
      (wakeups = per_op * n)
  else
    check (what "exactly one wakeup per op (%d)" wakeups) (wakeups = per_op);
  Array.iteri
    (fun i st ->
      if i <> root then
        check
          (what "no wakeups off the root")
          (Runtime.host_notifications st.Stack.rt = 0))
    w.Coll.World.stacks;
  Array.iter
    (fun c -> assert (Coll.ops_completed c = per_op))
    w.Coll.World.colls;
  let sp =
    span_mean_us tracer (if host then "coll.host_op" else "coll.op")
  in
  (* every timed primitive contributes to the span population, so the
     traced critical path must bracket the per-primitive medians *)
  check
    (what "span mean %.1f us consistent with latencies" sp)
    (sp > 0.
    && sp >= (pct b_lat 0.5 /. 2.)
    && sp <= 2. *. Float.max (pct c_lat 0.99) (Float.max (pct b_lat 0.99) (pct r_lat 0.99)));
  {
    cabs;
    mode;
    ops;
    depth = Tree.max_depth w.Coll.World.tree;
    fanout = Tree.max_fanout w.Coll.World.tree;
    wakeups;
    b_p50_us = pct b_lat 0.5;
    b_p99_us = pct b_lat 0.99;
    r_p50_us = pct r_lat 0.5;
    r_p99_us = pct r_lat 0.99;
    c_p50_us = pct c_lat 0.5;
    c_p99_us = pct c_lat 0.99;
    span_mean_us = sp;
    wall_s = wall;
  }

(* Recorded regression point for perf-smoke (BENCH_perf.json
   "collectives"): the 64-CAB tree barrier p50, simulated and
   deterministic, asserted exactly. *)
let recorded_tree_barrier_p50_us_64 = 236.3

type result = { r_points : point list }

let measure ~smoke ~check () =
  let ops = if smoke then 3 else 10 in
  let sizes = if smoke then [ 64 ] else [ 64; 256; 1024 ] in
  let points =
    List.concat_map
      (fun cabs ->
        let tree = run_point ~check ~cabs ~ops ~host:false in
        let host = run_point ~check ~cabs ~ops ~host:true in
        (* the headline claim: combining on the CABs beats hauling every
           arrival across the VME boundary, and the gap grows with n *)
        check
          (Printf.sprintf
             "coll %d: tree barrier p99 %.1f us < host %.1f us" cabs
             tree.b_p99_us host.b_p99_us)
          (tree.b_p99_us < host.b_p99_us);
        [ tree; host ])
      sizes
  in
  if smoke then
    List.iter
      (fun p ->
        if p.cabs = 64 && p.mode = "tree" then
          check
            (Printf.sprintf
               "BENCH_perf.json collectives: 64-CAB tree barrier p50 %.1f us \
                (recorded %.1f)"
               p.b_p50_us recorded_tree_barrier_p50_us_64)
            (Float.round (p.b_p50_us *. 10.) /. 10.
            = recorded_tree_barrier_p50_us_64))
      points;
  { r_points = points }

let print r =
  Printf.printf
    "  collectives (torus, 4 CABs/hub; latencies simulated at the root):\n";
  Printf.printf "    %5s %-5s %3s %3s %9s %9s %9s %9s %9s %8s\n" "cabs" "mode"
    "dep" "fan" "bar_p50" "bar_p99" "red_p99" "bc_p99" "span_us" "wakeups";
  List.iter
    (fun p ->
      Printf.printf
        "    %5d %-5s %3d %3d %9.1f %9.1f %9.1f %9.1f %9.1f %8d\n" p.cabs
        p.mode p.depth p.fanout p.b_p50_us p.b_p99_us p.r_p99_us p.c_p99_us
        p.span_mean_us p.wakeups)
    r.r_points

let json_fragment r =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "  \"collectives\": {\n\
    \    \"note\": \"CAB-resident spanning-tree collectives vs host-driven \
     baseline; simulated, deterministic, smoke-gated (single wakeup per op, \
     tree p99 < host p99)\",\n\
    \    \"points\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"cabs\": %d, \"mode\": \"%s\", \"ops\": %d, \"depth\": %d, \
         \"fanout\": %d, \"host_wakeups\": %d, \"barrier_p50_us\": %.1f, \
         \"barrier_p99_us\": %.1f, \"reduce_p50_us\": %.1f, \
         \"reduce_p99_us\": %.1f, \"bcast_p50_us\": %.1f, \"bcast_p99_us\": \
         %.1f, \"root_span_mean_us\": %.1f }%s\n"
        p.cabs p.mode p.ops p.depth p.fanout p.wakeups p.b_p50_us p.b_p99_us
        p.r_p50_us p.r_p99_us p.c_p50_us p.c_p99_us p.span_mean_us
        (if i = List.length r.r_points - 1 then "" else ","))
    r.r_points;
  Buffer.add_string b "  ] }";
  Buffer.contents b

(* Standalone experiment (the @coll CI alias runs the smoke form). *)
let run ~smoke () =
  Bench_world.section
    (if smoke then
       "Collectives (smoke: 64 CABs, wakeup + latency + span gates)"
     else "Collectives: 64/256/1024 CABs, tree vs host-driven baseline");
  let failures = ref 0 in
  let check what ok =
    if not ok then begin
      incr failures;
      Printf.printf "  FAIL: %s\n" what
    end
  in
  let r = measure ~smoke ~check () in
  print r;
  if !failures > 0 then begin
    Printf.printf "  coll: %d check(s) FAILED\n" !failures;
    exit 1
  end
  else Printf.printf "  coll: all deterministic checks passed\n"
