(* Failover bench (beyond the paper — see EXPERIMENTS.md): goodput dip and
   blackout-window distribution while the routing layer reconverges around
   a flapping trunk.

   A 4-HUB ring carries paced windowed-RMP traffic between two CABs whose
   default route crosses the flapping trunk (hub 0, port 14).  Each flap
   cycle takes that trunk down for 2 ms; the router detects the
   transition, recomputes onto the ring's other arc, and the window head's
   RTO clock recovers whatever the dark window swallowed.  The blackout
   per cycle — down transition to the first subsequent "rmp.deliver" trace
   instant — is a pure function of the cost model, so its distribution is
   deterministic and the p99 is asserted against the advertised bound
   (detection + recompute + one RTO, plus the sender's pacing gap). *)

open Nectar_sim
open Nectar_core
open Nectar_proto
open Bench_world
module Chaos = Nectar_chaos.Chaos
module Router = Nectar_route.Router

type result = {
  cycles : int;
  msgs : int;
  msg_bytes : int;
  delivered : int;
  goodput_steady : float;  (** Mbit/s outside the recovery windows *)
  goodput_flap : float;  (** Mbit/s inside [down, down + bound + gap] *)
  blackout_p50_us : float;
  blackout_p99_us : float;
  blackout_max_us : float;
  bound_us : float;  (** detection + recompute + RTO + pacing gap *)
  refusals : int;
  recomputes : int;
  retransmits : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (p * (n - 1) / 100))

(* One flap cycle every [period]; the trunk is dark for [outage] of it.
   Deterministic: no PRNG draws, and tracing consumes no simulated time. *)
let measure ?(cycles = 25) () =
  let gap = Sim_time.us 200 and msg_bytes = 512 in
  let period = Sim_time.ms 8 and outage = Sim_time.ms 2 in
  let first_down = Sim_time.ms 5 in
  let w =
    Chaos.build_ring ~hubs:4
      ~at:[ (0, 2); (2, 2) ]
      ~stack_opts:(fun rt -> Stack.create rt ~rmp_window:4 ())
      ()
  in
  let a = w.Chaos.stacks.(0) and b = w.Chaos.stacks.(1) in
  let downs = List.init cycles (fun k -> first_down + (k * period)) in
  Chaos.install w
    {
      Chaos.Plan.seed = 1990;
      steps =
        List.concat_map
          (fun d ->
            [
              Chaos.Plan.step d
                (Chaos.Plan.Link { hub = 0; port = 14; up = false });
              Chaos.Plan.step (d + outage)
                (Chaos.Plan.Link { hub = 0; port = 14; up = true });
            ])
          downs;
    };
  (* enough paced traffic to outlive the last flap cycle *)
  let msgs = (first_down + (cycles * period)) / gap in
  let port = 940 in
  let inbox =
    Runtime.create_mailbox b.Stack.rt ~name:"failover-inbox" ~port
      ~byte_limit:(256 * 1024) ()
  in
  let got = ref 0 in
  spawn_cab_thread b ~name:"failover-sink" (fun ctx ->
      for _ = 1 to msgs do
        let m = Mailbox.begin_get ctx inbox in
        Mailbox.end_get ctx m;
        incr got
      done);
  (* the default 64k-event ring would overwrite the earliest cycles'
     deliveries over a ~200 ms run; size it for the whole run *)
  let tracer = Trace.create ~capacity:(1 lsl 21) w.Chaos.eng in
  Trace.install tracer;
  Fun.protect
    ~finally:(fun () -> Trace.uninstall ())
    (fun () ->
      spawn_cab_thread a ~name:"failover-source" (fun ctx ->
          let payload = String.make msg_bytes 'f' in
          let dst_cab = Stack.node_id b in
          for _ = 1 to msgs do
            Rmp.send_string ctx a.Stack.rmp ~dst_cab ~dst_port:port payload;
            Engine.sleep ctx.Ctx.eng gap
          done;
          Rmp.flush ctx a.Stack.rmp ~dst_cab ~dst_port:port);
      Engine.run w.Chaos.eng;
      let deliveries = Trace.occurrences tracer "rmp.deliver" in
      let bound =
        Router.blackout_bound_ns a.Stack.router ~rto_ns:(Rmp.rto a.Stack.rmp)
        + gap
      in
      let blackouts =
        List.map
          (fun d ->
            match List.find_opt (fun t -> t > d) deliveries with
            | Some t -> t - d
            | None -> max_int)
          downs
      in
      let sorted = Array.of_list (List.sort compare blackouts) in
      (* goodput inside vs outside the recovery windows [d, d + bound] *)
      let in_window t = List.exists (fun d -> t > d && t <= d + bound) downs in
      let flap_time = cycles * bound in
      let span =
        match List.rev deliveries with last :: _ -> last | [] -> 1
      in
      let n_flap = List.length (List.filter in_window deliveries) in
      let n_steady = List.length deliveries - n_flap in
      {
        cycles;
        msgs;
        msg_bytes;
        delivered = !got;
        goodput_steady =
          mbps ~bytes:(n_steady * msg_bytes) ~ns:(span - flap_time);
        goodput_flap = mbps ~bytes:(n_flap * msg_bytes) ~ns:flap_time;
        blackout_p50_us = Sim_time.to_us (percentile sorted 50);
        blackout_p99_us = Sim_time.to_us (percentile sorted 99);
        blackout_max_us = Sim_time.to_us (percentile sorted 100);
        bound_us = Sim_time.to_us bound;
        refusals = Router.route_down_refusals a.Stack.router;
        recomputes = Router.recomputes a.Stack.router;
        retransmits = Rmp.retransmits a.Stack.rmp;
      })

let print r =
  Printf.printf
    "  ring failover, %d flap cycles, %d B x %d msgs (simulated):\n\
    \    goodput   steady %8s Mbit/s   during reconvergence %8s Mbit/s\n\
    \    blackout  p50 %6.0f us   p99 %6.0f us   max %6.0f us   (bound \
     %.0f us)\n\
    \    route recomputes %d, typed refusals %d, retransmits %d\n"
    r.cycles r.msg_bytes r.msgs (fmt_mbps r.goodput_steady)
    (fmt_mbps r.goodput_flap) r.blackout_p50_us r.blackout_p99_us
    r.blackout_max_us r.bound_us r.recomputes r.refusals r.retransmits

let run () =
  section "Failover: goodput and blackout under a flapping ring trunk";
  let r = measure () in
  print r;
  let ok =
    r.delivered = r.msgs
    && r.blackout_max_us <= r.bound_us
    && r.recomputes = 2 * r.cycles
  in
  if not ok then begin
    Printf.printf "  failover: FAIL (delivery or blackout bound violated)\n";
    exit 1
  end
  else Printf.printf "  failover: every blackout inside the bound\n"
