(* Fleet-scale bench (beyond the paper — see EXPERIMENTS.md).

   256/512/1024-CAB torus fleets under synthetic workloads (incast
   fan-in, all-to-all, Zipfian hotspot), driven wire-level through the
   conservative parallel engine by lib/fleet.  Deterministic and gated:
   delivery totals, per-partition wire conservation, handoff balance,
   and double-run determinism on the 1024-CAB world.  Reported but
   machine-independent: tail latency (p50/p99/max), per-sender goodput
   spread, HUB port contention.

   The slab section measures the allocation pools: minor words per
   message with the engine event slab off vs on (same fleet workload,
   single domain, identical results asserted) and with the Message
   record pool off vs on (a stack-level windowed-RMP pair).  The
   before/after numbers land in BENCH_perf.json; perf-smoke re-gates
   the recorded bytes-per-node so slab regressions fail CI. *)

open Nectar_sim
open Nectar_core
open Nectar_proto
module Net = Nectar_hub.Network
module Cab = Nectar_cab.Cab
module Topology = Nectar_fleet.Topology
module Workload = Nectar_fleet.Workload
module Driver = Nectar_fleet.Driver

(* ---------- fleet points ---------- *)

let torus_for cabs =
  match cabs with
  | 256 -> Topology.Torus { rows = 8; cols = 8; seats = 4 }
  | 512 -> Topology.Torus { rows = 16; cols = 8; seats = 4 }
  | 1024 -> Topology.Torus { rows = 16; cols = 16; seats = 4 }
  | _ -> invalid_arg "fleet: unknown size"

let pattern_of = function
  | "incast" -> Workload.Incast { sinks = 8 }
  | "all-to-all" -> Workload.All_to_all
  | "hotspot" -> Workload.Hotspot { alpha = 1.1 }
  | p -> invalid_arg ("fleet: unknown pattern " ^ p)

let cfg ~cabs ~pattern ~msgs ~domains ~event_pool =
  Driver.config ~domains ~event_pool ~frame_bytes:256 ~topo:(torus_for cabs)
    ~workload:
      (Workload.make ~pattern:(pattern_of pattern)
         ~arrivals:(Workload.Closed { think_ns = 20_000 })
         ~msgs_per_node:msgs ~seed:1990)
    ()

type point = {
  cabs : int;
  pattern : string;
  domains : int;
  offered : int;
  wall_s : float;
  delivered : int;
  windows : int;
  crossed : int;
  spread : float;
  lat_p50 : int;
  lat_p99 : int;
  lat_max : int;
  port_waits : int;
  port_wait_us_per_msg : float;
  final_ms : float;
}

let run_point ~check ~cabs ~pattern ~msgs ~domains ~determinism =
  let c = cfg ~cabs ~pattern ~msgs ~domains ~event_pool:true in
  let t0 = Unix.gettimeofday () in
  let r = Driver.run c in
  let wall = Unix.gettimeofday () -. t0 in
  let what fmt =
    Printf.ksprintf
      (fun s -> Printf.sprintf "fleet %d/%s/%dd: %s" cabs pattern domains s)
      fmt
  in
  check
    (what "delivered %d/%d" (Driver.delivered r) r.Driver.total_msgs)
    (Driver.delivered r = r.Driver.total_msgs);
  check (what "wire conservation") r.Driver.conserved;
  check
    (what "handoffs balance (%d out, %d in)" (Driver.handed_off r)
       (Driver.injected r))
    (Driver.handed_off r = Driver.injected r);
  if domains > 1 then
    check
      (what "crossings counted (%d)" r.Driver.crossed)
      (r.Driver.crossed = Driver.handed_off r && r.Driver.crossed > 0);
  check (what "fan-in queues on HUB ports") (r.Driver.port_waits > 0);
  if determinism then begin
    let r2 = Driver.run c in
    check (what "double-run determinism") (Driver.deterministic_eq r r2)
  end;
  {
    cabs;
    pattern;
    domains;
    offered = r.Driver.total_msgs;
    wall_s = wall;
    delivered = Driver.delivered r;
    windows = r.Driver.windows;
    crossed = r.Driver.crossed;
    spread = r.Driver.spread;
    lat_p50 = r.Driver.lat_p50;
    lat_p99 = r.Driver.lat_p99;
    lat_max = r.Driver.lat_max;
    port_waits = r.Driver.port_waits;
    port_wait_us_per_msg =
      (if Driver.delivered r = 0 then 0.
       else
         float_of_int r.Driver.port_wait_ns
         /. float_of_int (Driver.delivered r) /. 1e3);
    final_ms =
      float_of_int (Array.fold_left max 0 r.Driver.finals) /. 1e6;
  }

(* ---------- slab measurements ---------- *)

(* Recorded regression point for perf-smoke: resident bytes per node of
   a built 256-CAB fleet world (BENCH_perf.json "fleet_scale").  Gated at
   1.5x so allocator or world-build regressions fail CI without making
   the gate machine-sensitive. *)
let recorded_bytes_per_node = 1_670

let bytes_per_node_gate ~check ~smoke =
  let c = cfg ~cabs:256 ~pattern:"incast" ~msgs:4 ~domains:1 ~event_pool:false in
  let b = Driver.build_bytes_per_node c in
  check
    (Printf.sprintf "fleet: build footprint %d B/node sane" b)
    (b > 0 && b < 2_000_000);
  if smoke then
    check
      (Printf.sprintf
         "BENCH_perf.json fleet_scale: %d B/node within 1.5x of recorded %d" b
         recorded_bytes_per_node)
      (b <= recorded_bytes_per_node * 3 / 2);
  b

(* Minor words per delivered message of a single-domain fleet run, event
   slab off vs on.  Single domain means every allocation happens on this
   domain, so Gc.minor_words brackets the run exactly; the off/on worlds
   are asserted result-identical first, making the comparison
   apples-to-apples. *)
let fleet_minor_words ~check ~msgs =
  let one event_pool =
    let c = cfg ~cabs:256 ~pattern:"all-to-all" ~msgs ~domains:1 ~event_pool in
    let w0 = Gc.minor_words () in
    let r = Driver.run c in
    let dw = Gc.minor_words () -. w0 in
    (r, dw /. float_of_int (max 1 (Driver.delivered r)))
  in
  let r_off, w_off = one false in
  let r_on, w_on = one true in
  check "fleet slab: pooled run result-identical"
    (Driver.deterministic_eq r_off r_on);
  check
    (Printf.sprintf "fleet slab: event pool recycles (%d hits)"
       r_on.Driver.pool_hits)
    (r_on.Driver.pool_hits > 0);
  check
    (Printf.sprintf "fleet slab: minor words/msg %.0f -> %.0f" w_off w_on)
    (w_on < w_off);
  (w_off, w_on, r_on.Driver.pool_hits)

(* Minor words per message of a stack-level windowed-RMP pair, Message
   record pool off vs on — the datalink/transport path is where Message
   records churn. *)
let rmp_minor_words ~check ~count =
  let one msg_pool =
    let eng = Engine.create () in
    let net = Net.create eng ~hubs:1 () in
    let make i =
      let cab =
        Cab.create net ~hub:0 ~port:i ~name:(Printf.sprintf "mp%d" i)
      in
      Stack.create (Runtime.create ~msg_pool cab) ~rmp_window:8 ()
    in
    let a = make 0 and b = make 1 in
    let port = 700 in
    let inbox =
      Runtime.create_mailbox b.Stack.rt ~name:"mp-inbox" ~port
        ~byte_limit:(256 * 1024) ()
    in
    let got = ref 0 in
    ignore
      (Thread.create (Runtime.cab b.Stack.rt) ~name:"sink" (fun ctx ->
           for _ = 1 to count do
             let m = Mailbox.begin_get ctx inbox in
             Mailbox.end_get ctx m;
             incr got
           done));
    ignore
      (Thread.create (Runtime.cab a.Stack.rt) ~name:"src" (fun ctx ->
           let payload = String.make 1024 'p' in
           let dst_cab = Stack.node_id b in
           for _ = 1 to count do
             Rmp.send_string ctx a.Stack.rmp ~dst_cab ~dst_port:port payload
           done;
           Rmp.flush ctx a.Stack.rmp ~dst_cab ~dst_port:port));
    let w0 = Gc.minor_words () in
    Engine.run eng;
    let dw = Gc.minor_words () -. w0 in
    let hits =
      match Runtime.msg_pool a.Stack.rt with
      | Some p -> Message.Pool.hits p
      | None -> 0
    in
    (!got, dw /. float_of_int (max 1 !got), hits)
  in
  let got_off, w_off, _ = one false in
  let got_on, w_on, hits = one true in
  check
    (Printf.sprintf "rmp slab: delivered %d = %d with pool" got_off got_on)
    (got_off = count && got_on = count);
  check
    (Printf.sprintf "rmp slab: message records recycle (%d hits)" hits)
    (hits > 0);
  check
    (Printf.sprintf "rmp slab: minor words/msg %.0f -> %.0f" w_off w_on)
    (w_on < w_off);
  (w_off, w_on, hits)

(* ---------- sweep ---------- *)

type slab = {
  s_bytes_per_node : int;
  s_fleet_words_off : float;
  s_fleet_words_on : float;
  s_fleet_pool_hits : int;
  s_rmp_words_off : float;
  s_rmp_words_on : float;
  s_msgpool_hits : int;
}

type result = { r_points : point list; r_slab : slab; r_cores : int }

let measure ~smoke ~check () =
  (* measured first, on a heap no finished domain has touched *)
  let b = bytes_per_node_gate ~check ~smoke in
  let points =
    if smoke then
      [ run_point ~check ~cabs:256 ~pattern:"incast" ~msgs:4 ~domains:2
          ~determinism:true ]
    else
      List.concat_map
        (fun (cabs, msgs) ->
          List.map
            (fun pattern ->
              (* the acceptance point: the 1024-CAB world re-runs and
                 must reproduce bit-for-bit *)
              let determinism = cabs = 1024 && pattern = "incast" in
              run_point ~check ~cabs ~pattern ~msgs ~domains:4 ~determinism)
            [ "incast"; "all-to-all"; "hotspot" ])
        [ (256, 400); (512, 400); (1024, 400) ]
  in
  let fw_off, fw_on, fhits =
    fleet_minor_words ~check ~msgs:(if smoke then 4 else 40)
  in
  let rw_off, rw_on, mhits =
    rmp_minor_words ~check ~count:(if smoke then 60 else 400)
  in
  {
    r_points = points;
    r_slab =
      {
        s_bytes_per_node = b;
        s_fleet_words_off = fw_off;
        s_fleet_words_on = fw_on;
        s_fleet_pool_hits = fhits;
        s_rmp_words_off = rw_off;
        s_rmp_words_on = rw_on;
        s_msgpool_hits = mhits;
      };
    r_cores = Domain.recommended_domain_count ();
  }

let print r =
  Printf.printf
    "  fleet worlds (torus, 4 CABs/hub, closed loop, %d cores):\n" r.r_cores;
  Printf.printf
    "    %5s %-10s %2s %8s %7s %9s %9s %9s %6s %8s\n"
    "cabs" "pattern" "d" "msgs" "wall_s" "p50_us" "p99_us" "max_us" "fair"
    "wait_us";
  List.iter
    (fun p ->
      Printf.printf
        "    %5d %-10s %2d %8d %7.2f %9.1f %9.1f %9.1f %6.2f %8.2f\n"
        p.cabs p.pattern p.domains p.offered p.wall_s
        (float_of_int p.lat_p50 /. 1e3)
        (float_of_int p.lat_p99 /. 1e3)
        (float_of_int p.lat_max /. 1e3)
        p.spread p.port_wait_us_per_msg)
    r.r_points;
  let s = r.r_slab in
  Printf.printf
    "  slab allocation (single-domain fleet + RMP pair):\n\
    \    build footprint        %8d B/node\n\
    \    event slab   words/msg %8.0f -> %8.0f  (%d recycles)\n\
    \    message pool words/msg %8.0f -> %8.0f  (%d recycles)\n"
    s.s_bytes_per_node s.s_fleet_words_off s.s_fleet_words_on
    s.s_fleet_pool_hits s.s_rmp_words_off s.s_rmp_words_on s.s_msgpool_hits

let json_fragment r =
  let b = Buffer.create 1024 in
  let s = r.r_slab in
  Printf.bprintf b
    "  \"fleet_scale\": {\n\
    \    \"note\": \"wall clock is machine-dependent (this run: %d cores); \
     counts, latencies, fairness and slab words are deterministic and \
     asserted\",\n\
    \    \"bytes_per_node\": %d,\n\
    \    \"event_slab_words_per_msg\": { \"off\": %.0f, \"on\": %.0f, \
     \"recycles\": %d },\n\
    \    \"msg_pool_words_per_msg\": { \"off\": %.0f, \"on\": %.0f, \
     \"recycles\": %d },\n\
    \    \"points\": [\n"
    r.r_cores s.s_bytes_per_node s.s_fleet_words_off s.s_fleet_words_on
    s.s_fleet_pool_hits s.s_rmp_words_off s.s_rmp_words_on s.s_msgpool_hits;
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"cabs\": %d, \"pattern\": \"%s\", \"domains\": %d, \
         \"msgs\": %d, \"wall_s\": %.3f, \"windows\": %d, \"crossings\": %d, \
         \"lat_p50_ns\": %d, \"lat_p99_ns\": %d, \"lat_max_ns\": %d, \
         \"goodput_spread\": %.3f, \"port_waits\": %d, \"final_sim_ms\": \
         %.1f }%s\n"
        p.cabs p.pattern p.domains p.offered p.wall_s p.windows p.crossed
        p.lat_p50 p.lat_p99 p.lat_max p.spread p.port_waits p.final_ms
        (if i = List.length r.r_points - 1 then "" else ","))
    r.r_points;
  Buffer.add_string b "  ] }";
  Buffer.contents b

(* Standalone experiment (the @fleet CI alias runs the smoke form). *)
let run ~smoke () =
  Bench_world.section
    (if smoke then
       "Fleet scale (smoke: 256 CABs, conservation + determinism + slab gates)"
     else "Fleet scale: 256/512/1024 CABs x incast/all-to-all/hotspot");
  let failures = ref 0 in
  let check what ok =
    if not ok then begin
      incr failures;
      Printf.printf "  FAIL: %s\n" what
    end
  in
  let r = measure ~smoke ~check () in
  print r;
  if !failures > 0 then begin
    Printf.printf "  fleet: %d check(s) FAILED\n" !failures;
    exit 1
  end
  else Printf.printf "  fleet: all deterministic checks passed\n"
