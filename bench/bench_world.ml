(* Shared world builders and measurement helpers for the paper-reproduction
   benches.  Each bench builds a fresh simulation, runs a workload, and
   reports simulated time — absolute hardware truth comes from the cost
   model in Nectar_cab.Costs (see DESIGN.md section 5). *)

open Nectar_sim
open Nectar_core
open Nectar_proto
open Nectar_host
module Net = Nectar_hub.Network
module Cab = Nectar_cab.Cab

type cab_world = {
  eng : Engine.t;
  net : Net.t;
  stack_a : Stack.t;
  stack_b : Stack.t;
}

let cab_pair ?tcp_checksum ?tcp_mss ?tcp_input_mode ?rmp_window ?rmp_ack_delay
    () =
  let eng = Engine.create () in
  let net = Net.create eng ~hubs:1 () in
  let make i =
    let cab = Cab.create net ~hub:0 ~port:i ~name:(Printf.sprintf "cab%d" i) in
    Stack.create (Runtime.create cab) ?tcp_checksum ?tcp_mss ?tcp_input_mode
      ?rmp_window ?rmp_ack_delay ()
  in
  let stack_a = make 0 in
  let stack_b = make 1 in
  { eng; net; stack_a; stack_b }

type host_world = {
  heng : Engine.t;
  hnet : Net.t;
  hstack_a : Stack.t;
  hstack_b : Stack.t;
  host_a : Host.t;
  host_b : Host.t;
  drv_a : Cab_driver.t;
  drv_b : Cab_driver.t;
}

let host_pair ?tcp_checksum ?tcp_mss () =
  let eng = Engine.create () in
  let net = Net.create eng ~hubs:1 () in
  let make i =
    let cab = Cab.create net ~hub:0 ~port:i ~name:(Printf.sprintf "cab%d" i) in
    let rt = Runtime.create cab in
    let stack = Stack.create rt ?tcp_checksum ?tcp_mss () in
    let host = Host.create eng ~name:(Printf.sprintf "host%d" i) in
    let drv = Cab_driver.attach host rt in
    (stack, host, drv)
  in
  let stack_a, host_a, drv_a = make 0 in
  let stack_b, host_b, drv_b = make 1 in
  { heng = eng; hnet = net; hstack_a = stack_a; hstack_b = stack_b;
    host_a; host_b; drv_a; drv_b }

let spawn_cab_thread stack ~name body =
  ignore
    (Thread.create (Runtime.cab stack.Stack.rt) ~priority:Thread.System ~name
       body)

(* ---------- formatting ---------- *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row4 a b c d = Printf.printf "  %-26s %14s %14s %14s\n" a b c d

let fmt_us ns = Printf.sprintf "%.0f us" (Sim_time.to_us ns)
let fmt_mbps v = Printf.sprintf "%.1f" v

let mbps ~bytes ~ns = Stats.Throughput.mbit_per_s ~bytes_moved:bytes ~elapsed:ns
