(* Figure 6: one-way host-to-host datagram latency breakdown.

   Paper: ~163 us one way, of which ~40% is the host-CAB interface at the
   two ends, ~40% CAB-to-CAB, and ~20% host processing (creating and
   reading the message).

   The bench replays the figure's exact path, recording an instant trace
   event at each stage boundary (rounds are strictly sequential, so the
   i-th occurrence of every label belongs to round i — exactly the
   per-iteration lookup Trace.occurrences provides):

     t0  host starts creating the message
     t1  host finishes begin_put/fill/end_put (the CAB is now interrupted)
     t2  the CAB send thread picks the request up and starts the send
     t3  the datagram has been delivered into the receiving mailbox
         (interrupt level on the receiving CAB; observed by an upcall)
     t4  the polling host process's begin_get returns
     t5  the host has read the payload out of CAB memory *)

open Nectar_sim
open Nectar_core
open Nectar_proto
open Nectar_host
open Bench_world

let payload_bytes = 64
let iterations = 12
let warmup = 4

let mark label = Trace.instant ~track:"fig6" label

let run () =
  let w = host_pair () in
  let eng = w.heng in
  let port = 900 in
  let tracer = Trace.create eng in
  Trace.install tracer;
  let inbox =
    Runtime.create_mailbox w.hstack_b.Stack.rt ~name:"f6-inbox" ~port
      ~upcall:(fun _ctx _mb -> mark "t3")
      ()
  in
  let send_mb =
    Runtime.create_mailbox w.hstack_a.Stack.rt ~name:"f6-send" ()
  in
  spawn_cab_thread w.hstack_a ~name:"send-server" (fun ctx ->
      while true do
        let m = Mailbox.begin_get ctx send_mb in
        mark "t2";
        let payload = Message.read_string m ~pos:0 ~len:(Message.length m) in
        Mailbox.end_get ctx m;
        Dgram.send_string ctx w.hstack_a.Stack.dgram ~dst_cab:1 ~dst_port:port
          payload
      done);
  let h_send =
    Hostlib.attach w.drv_a send_mb ~mode:Hostlib.Shared_memory ~readers:`Cab
  in
  let h_in =
    Hostlib.attach w.drv_b inbox ~mode:Hostlib.Shared_memory ~readers:`Host
  in
  (* round-trip control channel so rounds do not overlap: receiver tells the
     sender (out of band, zero sim cost) when it is done *)
  let round_done = Waitq.create eng ~name:"f6-round" () in
  Host.spawn_process w.host_b ~name:"reader" (fun ctx ->
      for _ = 1 to iterations do
        let m = Hostlib.begin_get ctx h_in in
        mark "t4";
        let s = Hostlib.read_string ctx h_in m in
        Table1.touch ctx (String.length s);
        mark "td";
        Hostlib.end_get ctx h_in m;
        mark "t5";
        ignore (Waitq.signal round_done)
      done);
  Host.spawn_process w.host_a ~name:"writer" (fun ctx ->
      for _ = 1 to iterations do
        mark "t0";
        Table1.touch ctx payload_bytes;
        mark "ta";
        let m = Hostlib.begin_put ctx h_send payload_bytes in
        mark "tb";
        Hostlib.write_string ctx h_send m ~pos:0
          (String.make payload_bytes 'x');
        mark "tc";
        Hostlib.end_put ctx h_send m;
        mark "t1";
        Waitq.wait round_done
      done);
  Engine.run eng;
  Trace.uninstall ();
  let occ label =
    let times = Array.of_list (Trace.occurrences tracer label) in
    if Array.length times <> iterations then
      failwith (Printf.sprintf "fig6: expected %d %s marks, got %d" iterations
                  label (Array.length times));
    times
  in
  let t0 = occ "t0" and ta = occ "ta" and tb = occ "tb" and tc = occ "tc"
  and t1 = occ "t1" and t2 = occ "t2" and t3 = occ "t3" and t4 = occ "t4"
  and td = occ "td" and t5 = occ "t5" in
  let acc = Array.make 5 0 in
  for i = warmup to iterations - 1 do
    (* host application work: produce + in-place payload writes *)
    acc.(0) <- acc.(0) + (ta.(i) - t0.(i)) + (tc.(i) - tb.(i));
    (* host-CAB interface, sender: mailbox bookkeeping, signal queue,
       CAB thread schedule *)
    acc.(1) <- acc.(1) + (tb.(i) - ta.(i)) + (t1.(i) - tc.(i))
               + (t2.(i) - t1.(i));
    (* CAB to CAB *)
    acc.(2) <- acc.(2) + (t3.(i) - t2.(i));
    (* host-CAB interface, receiver: poll wakeup + bookkeeping *)
    acc.(3) <- acc.(3) + (t4.(i) - t3.(i)) + (t5.(i) - td.(i));
    (* host application work: payload reads + consume *)
    acc.(4) <- acc.(4) + (td.(i) - t4.(i))
  done;
  let n = iterations - warmup in
  let avg i = acc.(i) / n in
  let create = avg 0
  and to_cab = avg 1
  and cab_cab = avg 2
  and to_host = avg 3
  and read = avg 4 in
  let total = create + to_cab + cab_cab + to_host + read in
  section "Figure 6: one-way host-to-host datagram latency breakdown";
  let pct x = 100. *. float_of_int x /. float_of_int total in
  let line name ns =
    Printf.printf "  %-34s %10s  (%4.1f%%)\n" name (fmt_us ns) (pct ns)
  in
  line "host: create message (in place)" create;
  line "host-CAB: put + signal + schedule" to_cab;
  line "CAB-to-CAB: send, wire, deliver" cab_cab;
  line "CAB-host: poll wake + bookkeeping" to_host;
  line "host: read message (in place)" read;
  Printf.printf "  %-34s %10s   paper: 163 us\n" "TOTAL one-way" (fmt_us total);
  let interface = to_cab + to_host
  and host = create + read in
  Printf.printf
    "  split: host-CAB interface %.0f%% / CAB-to-CAB %.0f%% / host %.0f%%\n"
    (pct interface) (pct cab_cab) (pct host);
  Printf.printf "  paper split:               40%% / 40%% / 20%%\n"
