(* Perf-regression harness (beyond the paper — see EXPERIMENTS.md,
   "Beyond the paper (fastpath)").

   Two kinds of numbers, kept deliberately separate:

   - wall-clock: how fast the *simulator itself* runs (the event engine
     micro plus a full fig7 RMP point).  Machine-dependent; measured with
     a median-of-samples loop rather than Bechamel's OLS so run-to-run
     noise stays small.  Compared against the recorded pre-fastpath
     baseline (~290k ns for the 1k-timer micro).

   - simulated: protocol throughput of the sliding-window RMP and a
     multi-CAB fleet with receive-interrupt coalescing.  Deterministic —
     pure functions of the cost model — so they double as regression
     counters.

   [run ~smoke:true] (the `perf-smoke` experiment, wired into ci.sh) runs
   shrunken simulated scenarios and asserts only deterministic counts —
   never wall-clock thresholds, which would make CI flaky.  The full
   `perf` experiment also writes BENCH_perf.json to the current
   directory; the checked-in copy at the repo root is the recorded
   regression point. *)

open Nectar_sim
open Nectar_core
open Nectar_proto
open Bench_world
module Net = Nectar_hub.Network
module Cab = Nectar_cab.Cab
module Rx = Nectar_cab.Rx

(* Recorded wall clock of the engine micro before the fastpath work
   (lazy-cancel polymorphic-compare heap), on the reference machine. *)
let baseline_engine_1k_ns = 290_000.

(* ---------- wall-clock measurement ---------- *)

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

(* Median of [samples] timings, each averaging [inner] calls: steadier
   than a single Bechamel OLS estimate for these ~100us workloads. *)
let time_ns ?(samples = 9) ?(inner = 100) f =
  Gc.compact ();
  ignore (f ());
  ignore (f ());
  let one () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int inner
  in
  median (List.init samples (fun _ -> one ()))

let engine_1k_events () =
  let eng = Engine.create () in
  for i = 1 to 1000 do
    ignore (Engine.at eng i (fun () -> ()))
  done;
  Engine.run eng

(* The RTO pattern: most timers are cancelled before they fire (every ack
   cancels a retransmit timer).  Exercises lazy cancellation and the
   dead-entry compaction path. *)
let engine_schedule_cancel () =
  let eng = Engine.create () in
  for i = 1 to 1000 do
    let tm = Engine.at eng (i + 1000) (fun () -> ()) in
    if i mod 8 <> 0 then Engine.cancel tm
  done;
  Engine.run eng

(* ---------- simulated: windowed RMP CAB-to-CAB throughput ---------- *)

(* Same shape as fig7's RMP point, plus a flush so windowed senders wait
   for their tail acks.  Returns (Mbit/s, delivered, retransmits,
   failed_sends). *)
let windowed_run ~window ~ack_delay ~size ~count =
  let w = cab_pair ~rmp_window:window ~rmp_ack_delay:ack_delay () in
  let port = 900 in
  let inbox =
    Runtime.create_mailbox w.stack_b.Stack.rt ~name:"perf-inbox" ~port
      ~byte_limit:(256 * 1024) ()
  in
  let got = ref 0 and done_at = ref 0 and started = ref 0 in
  spawn_cab_thread w.stack_b ~name:"sink" (fun ctx ->
      for _ = 1 to count do
        let m = Mailbox.begin_get ctx inbox in
        Mailbox.end_get ctx m;
        incr got
      done;
      done_at := Engine.now w.eng);
  spawn_cab_thread w.stack_a ~name:"source" (fun ctx ->
      started := Engine.now w.eng;
      let payload = String.make size 'p' in
      let dst_cab = Stack.node_id w.stack_b in
      for _ = 1 to count do
        Rmp.send_string ctx w.stack_a.Stack.rmp ~dst_cab ~dst_port:port
          payload
      done;
      Rmp.flush ctx w.stack_a.Stack.rmp ~dst_cab ~dst_port:port);
  Engine.run w.eng;
  let rmp = w.stack_a.Stack.rmp in
  ( mbps ~bytes:(count * size) ~ns:(!done_at - !started),
    !got,
    Rmp.retransmits rmp,
    Rmp.failed_sends rmp )

(* ---------- simulated: multi-CAB fleet with rx coalescing ---------- *)

(* [senders] CABs blast one sink over windowed RMP; the sink's receive
   engine optionally coalesces completion interrupts ([coalesce_ns]).
   Returns (aggregate Mbit/s, delivered, completion batches). *)
let fleet_run ~senders ~window ~size ~count ~coalesce_ns =
  let eng = Engine.create () in
  let net = Net.create eng ~hubs:1 () in
  let make i =
    let cab = Cab.create net ~hub:0 ~port:i ~name:(Printf.sprintf "fl%d" i) in
    Stack.create (Runtime.create cab) ~rmp_window:window ()
  in
  let sink = make 0 in
  let srcs = List.init senders (fun i -> make (i + 1)) in
  Rx.set_coalesce_ns (Cab.rx (Runtime.cab sink.Stack.rt)) coalesce_ns;
  let port = 700 in
  let inbox =
    Runtime.create_mailbox sink.Stack.rt ~name:"fleet-inbox" ~port
      ~byte_limit:(512 * 1024) ()
  in
  let total = senders * count in
  let got = ref 0 and done_at = ref 0 and started = ref 0 in
  spawn_cab_thread sink ~name:"fleet-sink" (fun ctx ->
      for _ = 1 to total do
        let m = Mailbox.begin_get ctx inbox in
        Mailbox.end_get ctx m;
        incr got
      done;
      done_at := Engine.now eng);
  List.iteri
    (fun i st ->
      spawn_cab_thread st ~name:(Printf.sprintf "fleet-src%d" i) (fun ctx ->
          if !started = 0 then started := Engine.now eng;
          let payload = String.make size 'f' in
          let dst_cab = Stack.node_id sink in
          for _ = 1 to count do
            Rmp.send_string ctx st.Stack.rmp ~dst_cab ~dst_port:port payload
          done;
          Rmp.flush ctx st.Stack.rmp ~dst_cab ~dst_port:port))
    srcs;
  Engine.run eng;
  let batches = Rx.completion_batches (Cab.rx (Runtime.cab sink.Stack.rt)) in
  (mbps ~bytes:(total * size) ~ns:(!done_at - !started), !got, batches)

(* ---------- deterministic assertions (smoke and full) ---------- *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL: %s\n" what
  end

(* ---------- simulated: copy accounting (zero-copy data path) ---------- *)

module Copy_meter = Nectar_util.Copy_meter

(* Per-message copy cost of the 8 KB CAB-to-CAB RMP path.  Counters are
   deterministic, so the exact values are asserted (also from ci.sh via
   perf-smoke).  Before the zero-copy data path, every transmitted frame
   was snapshotted with [Bytes.sub] at the tx DMA — the "before" figure is
   therefore the measured copies plus one copy of every wire byte. *)
let copies_rmp ~size ~count =
  Copy_meter.reset ();
  let w = cab_pair ~rmp_window:1 () in
  let port = 910 in
  let inbox =
    Runtime.create_mailbox w.stack_b.Stack.rt ~name:"copy-inbox" ~port
      ~byte_limit:(256 * 1024) ()
  in
  spawn_cab_thread w.stack_b ~name:"sink" (fun ctx ->
      for _ = 1 to count do
        let m = Mailbox.begin_get ctx inbox in
        Mailbox.end_get ctx m
      done);
  spawn_cab_thread w.stack_a ~name:"source" (fun ctx ->
      let payload = String.make size 'c' in
      let dst_cab = Stack.node_id w.stack_b in
      for _ = 1 to count do
        Rmp.send_string ctx w.stack_a.Stack.rmp ~dst_cab ~dst_port:port
          payload
      done);
  Engine.run w.eng;
  (Copy_meter.report (), Copy_meter.bytes_copied (), Net.bytes_sent w.net)

(* Per-segment copy cost of CAB-to-CAB TCP (mss = message size, one segment
   per application write, as in fig7). *)
let copies_tcp ~size ~count =
  Copy_meter.reset ();
  let w = cab_pair ~tcp_mss:size () in
  let total = count * size in
  Tcp.listen w.stack_b.Stack.tcp ~port:80 ~on_accept:(fun conn ->
      spawn_cab_thread w.stack_b ~name:"sink" (fun ctx ->
          let received = ref 0 in
          while !received < total do
            received := !received + String.length (Tcp.recv_string ctx conn)
          done));
  spawn_cab_thread w.stack_a ~name:"source" (fun ctx ->
      let conn =
        Tcp.connect ctx w.stack_a.Stack.tcp ~dst:(Stack.addr w.stack_b)
          ~dst_port:80 ()
      in
      let payload = String.make size 't' in
      for _ = 1 to count do
        Tcp.send ctx conn payload
      done);
  Engine.run w.eng;
  (Copy_meter.report (), Copy_meter.bytes_copied (), Net.bytes_sent w.net)

let site_bytes report name =
  match List.find_opt (fun (s, _, _) -> s = name) report with
  | Some (_, _, bytes) -> bytes
  | None -> 0

let check_copies ~size ~count =
  (* RMP: the only remaining copy is the application string entering the
     mailbox buffer; the frame, both headers, and delivery are in place *)
  let rmp_report, rmp_after, rmp_wire = copies_rmp ~size ~count in
  let app = site_bytes rmp_report "app" in
  check
    (Printf.sprintf "rmp copies: app only (%d B app of %d B total)" app
       rmp_after)
    (app = count * size && rmp_after = app);
  List.iter
    (fun site ->
      check
        (Printf.sprintf "rmp copies: site '%s' stays eliminated" site)
        (site_bytes rmp_report site = 0))
    [ "txsnap"; "rxread"; "hdr"; "frag"; "host" ];
  (* one DATA frame (12 B dl + 12 B rmp + payload) and one 24 B ACK per
     message on a clean stop-and-wait wire *)
  check
    (Printf.sprintf "rmp wire bytes account (%d B)" rmp_wire)
    (rmp_wire = count * (size + 48));
  let rmp_before = rmp_after + rmp_wire in
  let reduction =
    1. -. (float_of_int rmp_after /. float_of_int rmp_before)
  in
  check
    (Printf.sprintf "rmp zero-copy saves >= 50%% (%.1f%%)"
       (100. *. reduction))
    (reduction >= 0.5);
  (* TCP: the sndbuf ring keeps two payload copies (in and out — the ring
     must survive for retransmission) plus the receiver's string API *)
  let tcp_report, tcp_after, tcp_wire = copies_tcp ~size ~count in
  check
    (Printf.sprintf "tcp copies: frag %d B, app %d B"
       (site_bytes tcp_report "frag")
       (site_bytes tcp_report "app"))
    (site_bytes tcp_report "frag" = count * size
    && site_bytes tcp_report "app" = 2 * count * size
    && tcp_after = 3 * count * size);
  List.iter
    (fun site ->
      check
        (Printf.sprintf "tcp copies: site '%s' stays eliminated" site)
        (site_bytes tcp_report site = 0))
    [ "txsnap"; "rxread"; "hdr"; "host" ];
  Copy_meter.reset ();
  ( (rmp_after / count, rmp_before / count, reduction),
    (tcp_after / count, (tcp_after + tcp_wire) / count) )

(* The compaction bound: a schedule-mostly-cancel storm must not let the
   heap grow past 2x the live events (plus the small threshold). *)
let check_compaction () =
  let eng = Engine.create () in
  let live = ref 0 in
  for i = 1 to 10_000 do
    let tm = Engine.at eng (i + 10_000) (fun () -> ()) in
    if i mod 10 <> 0 then Engine.cancel tm else incr live
  done;
  let q = Engine.queued_events eng and p = Engine.pending_events eng in
  check
    (Printf.sprintf "compaction bound (queued %d, pending %d)" q p)
    (p = !live && q <= (2 * p) + 64);
  Engine.run eng

let check_sweep ~size ~count rows =
  List.iter
    (fun (win, (tput, got, retx, failed)) ->
      check
        (Printf.sprintf "window %d: delivered %d/%d, retx %d, failed %d" win
           got count retx failed)
        (got = count && retx = 0 && failed = 0);
      ignore tput)
    rows;
  (match (List.assoc_opt 1 rows, List.assoc_opt 16 rows) with
  | Some (t1, _, _, _), Some (t16, _, _, _) ->
      check
        (Printf.sprintf "window 16 (%.1f) >= window 1 (%.1f) at %d B" t16 t1
           size)
        (t16 >= t1)
  | _ -> ());
  rows

(* ---------- JSON ---------- *)

let json_of ~engine_ns ~cancel_ns ~fig7_wall_ms ~sweep ~size
    ~(fleet_off : float * int * int) ~(fleet_on : float * int * int)
    ~fleet_cfg ~copy_size
    ~(rmp_copies : int * int * float) ~(tcp_copies : int * int)
    ~(fo : Failover.result) ~scaling ~fleet_scale ~collectives =
  let b = Buffer.create 1024 in
  let senders, fcount, fsize, coal_us = fleet_cfg in
  let off_t, off_got, off_b = fleet_off in
  let on_t, on_got, on_b = fleet_on in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"fastpath-perf\",\n";
  Printf.bprintf b
    "  \"wall_clock\": {\n\
    \    \"note\": \"machine-dependent; median-of-samples, not asserted in \
     CI\",\n\
    \    \"engine_1k_events_baseline_ns\": %.0f,\n\
    \    \"engine_1k_events_ns\": %.0f,\n\
    \    \"engine_1k_events_speedup\": %.2f,\n\
    \    \"engine_1k_schedule_cancel_ns\": %.0f,\n\
    \    \"fig7_rmp_8k_wall_ms\": %.1f\n\
    \  },\n"
    baseline_engine_1k_ns engine_ns
    (baseline_engine_1k_ns /. engine_ns)
    cancel_ns fig7_wall_ms;
  Printf.bprintf b "  \"windowed_rmp\": { \"msg_bytes\": %d, \"points\": [\n"
    size;
  List.iteri
    (fun i (win, (tput, got, retx, failed)) ->
      Printf.bprintf b
        "    { \"window\": %d, \"mbit_s\": %.1f, \"delivered\": %d, \
         \"retransmits\": %d, \"failed_sends\": %d }%s\n"
        win tput got retx failed
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  Buffer.add_string b "  ] },\n";
  Printf.bprintf b
    "  \"fleet\": {\n\
    \    \"senders\": %d, \"msgs_per_sender\": %d, \"msg_bytes\": %d,\n\
    \    \"coalesce_off\": { \"mbit_s\": %.1f, \"delivered\": %d, \
     \"batches\": %d },\n\
    \    \"coalesce_on\": { \"coalesce_us\": %d, \"mbit_s\": %.1f, \
     \"delivered\": %d, \"batches\": %d }\n\
    \  }\n"
    senders fcount fsize off_t off_got off_b coal_us on_t on_got on_b;
  Buffer.add_string b ",\n";
  let rmp_after, rmp_before, reduction = rmp_copies in
  let tcp_after, tcp_before = tcp_copies in
  Printf.bprintf b
    "  \"copies\": {\n\
    \    \"note\": \"software payload copies per message (Copy_meter); \
     deterministic, asserted exactly\",\n\
    \    \"msg_bytes\": %d,\n\
    \    \"rmp\": { \"bytes_copied_per_msg\": %d, \
     \"pre_zerocopy_per_msg\": %d, \"reduction\": %.3f },\n\
    \    \"tcp\": { \"bytes_copied_per_segment\": %d, \
     \"pre_zerocopy_per_segment\": %d }\n\
    \  }\n"
    copy_size rmp_after rmp_before reduction tcp_after tcp_before;
  Buffer.add_string b ",\n";
  Buffer.add_string b scaling;
  Buffer.add_string b ",\n";
  Buffer.add_string b fleet_scale;
  Buffer.add_string b ",\n";
  Buffer.add_string b collectives;
  Buffer.add_string b ",\n";
  Printf.bprintf b
    "  \"failover\": {\n\
    \    \"note\": \"ring reconvergence under a flapping trunk (simulated, \
     deterministic)\",\n\
    \    \"flap_cycles\": %d, \"msg_bytes\": %d,\n\
    \    \"goodput_steady_mbit_s\": %.1f, \
     \"goodput_reconvergence_mbit_s\": %.1f,\n\
    \    \"blackout_p50_us\": %.0f, \"blackout_p99_us\": %.0f, \
     \"blackout_max_us\": %.0f, \"bound_us\": %.0f,\n\
    \    \"route_recomputes\": %d, \"route_refusals\": %d, \
     \"retransmits\": %d\n\
    \  }\n"
    fo.Failover.cycles fo.Failover.msg_bytes fo.Failover.goodput_steady
    fo.Failover.goodput_flap fo.Failover.blackout_p50_us
    fo.Failover.blackout_p99_us fo.Failover.blackout_max_us
    fo.Failover.bound_us fo.Failover.recomputes fo.Failover.refusals
    fo.Failover.retransmits;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ---------- driver ---------- *)

let run ?(smoke = false) () =
  section
    (if smoke then "Perf harness (smoke: deterministic counts only)"
     else "Perf harness (fastpath): wall clock + windowed RMP");
  failures := 0;
  check_compaction ();
  let size = if smoke then 1024 else 8192 in
  let count = if smoke then 40 else 183 in
  let sweep =
    check_sweep ~size ~count
      (List.map
         (fun win ->
           (win, windowed_run ~window:win ~ack_delay:0 ~size ~count))
         [ 1; 4; 16 ])
  in
  Printf.printf "  windowed RMP, %d B x %d msgs (simulated):\n" size count;
  List.iter
    (fun (win, (tput, _, _, _)) ->
      Printf.printf "    window %-3d %8s Mbit/s\n" win (fmt_mbps tput))
    sweep;
  check "tracer disabled (zero-cost hooks compiled in)"
    (not (Trace.installed ()));
  if smoke then
    (* BENCH_perf.json regression gate: the recorded full-size windowed-RMP
       numbers must reproduce exactly with tracing compiled in but disabled *)
    List.iter
      (fun (win, want) ->
        let tput, got, retx, failed =
          windowed_run ~window:win ~ack_delay:0 ~size:8192 ~count:183
        in
        let r = Float.round (tput *. 10.) /. 10. in
        check
          (Printf.sprintf
             "BENCH_perf.json window %d: %.1f Mbit/s (recorded %.1f)" win r
             want)
          (r = want && got = 183 && retx = 0 && failed = 0))
      [ (1, 84.9); (4, 94.1); (16, 94.1) ];
  (* Small frames so several receive completions land inside one coalesce
     window (a 512 B frame occupies the sink's link for ~44 us). *)
  let senders = if smoke then 3 else 4 in
  let fcount = if smoke then 30 else 200 in
  let fsize = 512 in
  let coal_us = 100 in
  let fleet ~coalesce_ns =
    fleet_run ~senders ~window:8 ~size:fsize ~count:fcount ~coalesce_ns
  in
  let copy_count = if smoke then 20 else 100 in
  let ((rmp_after, rmp_before, reduction) as rmp_copies), tcp_copies =
    check_copies ~size ~count:copy_count
  in
  let tcp_after, tcp_before = tcp_copies in
  Printf.printf
    "  copies per message, %d B payload (simulated, exact):\n\
    \    rmp  %6d B copied  (pre-zerocopy %6d B, -%.1f%%)\n\
    \    tcp  %6d B copied  (pre-zerocopy %6d B)\n"
    size rmp_after rmp_before (100. *. reduction) tcp_after tcp_before;
  let ((off_t, off_got, off_b) as fleet_off) = fleet ~coalesce_ns:0 in
  let ((on_t, on_got, on_b) as fleet_on) =
    fleet ~coalesce_ns:(Sim_time.us coal_us)
  in
  let total = senders * fcount in
  check
    (Printf.sprintf "fleet coalesce off: delivered %d/%d, batches %d" off_got
       total off_b)
    (off_got = total && off_b = 0);
  check
    (Printf.sprintf "fleet coalesce on: delivered %d/%d, batches %d" on_got
       total on_b)
    (on_got = total && on_b > 0 && on_b < total);
  Printf.printf
    "  fleet (%d senders x %d x %d B, window 8, simulated):\n\
    \    coalesce off    %8s Mbit/s  (one interrupt per frame)\n\
    \    coalesce %3dus  %8s Mbit/s  (%d frames in %d batches)\n"
    senders fcount fsize (fmt_mbps off_t) coal_us (fmt_mbps on_t) on_got on_b;
  (* Failover: simulated and deterministic, so the same full-size run backs
     both the smoke regression gate and the recorded JSON. *)
  let fo = Failover.measure () in
  Failover.print fo;
  check
    (Printf.sprintf "failover: delivered %d/%d" fo.Failover.delivered
       fo.Failover.msgs)
    (fo.Failover.delivered = fo.Failover.msgs);
  check
    (Printf.sprintf "failover: max blackout %.0f us inside bound %.0f us"
       fo.Failover.blackout_max_us fo.Failover.bound_us)
    (fo.Failover.blackout_max_us <= fo.Failover.bound_us);
  check
    (Printf.sprintf "failover: %d recomputes for %d flap cycles"
       fo.Failover.recomputes fo.Failover.cycles)
    (fo.Failover.recomputes = 2 * fo.Failover.cycles);
  if smoke then
    (* BENCH_perf.json regression gate: the recorded blackout distribution
       must reproduce exactly *)
    check
      (Printf.sprintf
         "BENCH_perf.json failover: p50 %.0f us, p99 %.0f us (recorded 40, \
          5093)"
         fo.Failover.blackout_p50_us fo.Failover.blackout_p99_us)
      (Float.round fo.Failover.blackout_p50_us = 40.
      && Float.round fo.Failover.blackout_p99_us = 5093.);
  (* Parallel-engine scaling: deterministic delivery/conservation/
     determinism gates run in both modes (the smoke form is 2 domains);
     wall-clock speedup is recorded, and asserted only on >= 4 cores. *)
  let scaling = Scaling.measure ~smoke ~check () in
  Scaling.print scaling;
  (* Fleet scale: 256-1024-CAB worlds, slab allocators, footprint gate
     (the smoke form is the @fleet CI alias's workload). *)
  let fleet_scale = Fleet_bench.measure ~smoke ~check () in
  Fleet_bench.print fleet_scale;
  (* Collectives: tree vs host-driven baseline, single-wakeup and tail
     latency gates (the smoke form is the @coll CI alias's workload). *)
  let collectives = Coll_bench.measure ~smoke ~check () in
  Coll_bench.print collectives;
  if not smoke then begin
    let engine_ns = time_ns engine_1k_events in
    let cancel_ns = time_ns engine_schedule_cancel in
    let fig7_wall =
      time_ns ~samples:3 ~inner:1 (fun () ->
          ignore (windowed_run ~window:1 ~ack_delay:0 ~size:8192 ~count:183))
      /. 1e6
    in
    Printf.printf
      "  wall clock (this machine):\n\
      \    engine 1k timer events   %8.0f ns/run  (baseline %.0f, speedup \
       %.2fx)\n\
      \    engine schedule+cancel   %8.0f ns/run\n\
      \    fig7 RMP 8KB point       %8.1f ms\n"
      engine_ns baseline_engine_1k_ns
      (baseline_engine_1k_ns /. engine_ns)
      cancel_ns fig7_wall;
    let js =
      json_of ~engine_ns ~cancel_ns ~fig7_wall_ms:fig7_wall ~sweep ~size
        ~fleet_off ~fleet_on
        ~fleet_cfg:(senders, fcount, fsize, coal_us)
        ~copy_size:size ~rmp_copies ~tcp_copies ~fo
        ~scaling:(Scaling.json_fragment scaling)
        ~fleet_scale:(Fleet_bench.json_fragment fleet_scale)
        ~collectives:(Coll_bench.json_fragment collectives)
    in
    let oc = open_out "BENCH_perf.json" in
    output_string oc js;
    close_out oc;
    Printf.printf "  wrote BENCH_perf.json\n"
  end;
  if !failures > 0 then begin
    Printf.printf "  perf: %d check(s) FAILED\n" !failures;
    exit 1
  end
  else Printf.printf "  perf: all deterministic checks passed\n"
